open Dmp_ir
open Dmp_core
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

let ctx_of ?(params = Params.default) program ~input =
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  (linked, profile, Context.create ~params linked profile)

(* ---------- Alg-exact ---------- *)

let test_exact_simple_hammock () =
  let linked, _, ctx =
    ctx_of (Helpers.simple_hammock_program ()) ~input:(Helpers.uniform_input 2100)
  in
  ignore linked;
  let cands = Alg_exact.find ctx in
  (* the hammock and the outer loop-back... the loop branch has no small
     exact region, so exactly one candidate: the simple hammock. *)
  let simple =
    List.filter
      (fun c -> c.Candidate.kind = Annotation.Simple_hammock)
      cands
  in
  check Alcotest.int "one simple hammock" 1 (List.length simple);
  let c = List.hd simple in
  (match c.Candidate.cfms with
  | [ cfm ] ->
      check Alcotest.bool "exact" true cfm.Candidate.exact;
      check (Alcotest.float 1e-9) "merge prob 1" 1. cfm.Candidate.merge_prob;
      check Alcotest.bool "side sizes" true
        (cfm.Candidate.longest_t <= 5 && cfm.Candidate.longest_nt <= 5)
  | _ -> Alcotest.fail "expected exactly one CFM");
  check Alcotest.bool "executed" true (c.Candidate.executed > 0)

let test_exact_nested_hammock () =
  let f = B.func "main" in
  let v = reg 4 and c1 = reg 5 and c2 = reg 8 and n = reg 6 in
  B.li f n 500;
  B.label f "loop";
  B.read f v;
  B.rem f c1 v (B.imm 2);
  B.div f c2 v (B.imm 2);
  B.rem f c2 c2 (B.imm 2);
  B.branch f Term.Ne c1 (B.imm 0) ~target:"outer_t" ();
  B.label f "outer_f";
  B.nop f;
  B.jump f "join";
  B.label f "outer_t";
  B.branch f Term.Ne c2 (B.imm 0) ~target:"inner_t" ();
  B.label f "inner_f";
  B.nop f;
  B.jump f "join";
  B.label f "inner_t";
  B.nop f;
  B.label f "join";
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  let program = Program.of_funcs_exn ~main:"main" [ B.finish f ] in
  let _, _, ctx = ctx_of program ~input:(Helpers.uniform_input 600) in
  let kinds =
    List.map (fun c -> c.Candidate.kind) (Alg_exact.find ctx)
    |> List.sort_uniq compare
  in
  check Alcotest.bool "outer branch is nested" true
    (List.mem Annotation.Nested_hammock kinds);
  check Alcotest.bool "inner branch is simple" true
    (List.mem Annotation.Simple_hammock kinds)

let test_exact_rejects_large () =
  (* Arms longer than MAX_INSTR must be rejected. *)
  let params = { Params.default with Params.max_instr = 20 } in
  let f = B.func "main" in
  let v = reg 4 and c = reg 5 and n = reg 6 in
  B.li f n 200;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"t" ();
  B.label f "f";
  for _ = 1 to 40 do
    B.nop f
  done;
  B.jump f "join";
  B.label f "t";
  B.nop f;
  B.label f "join";
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  let program = Program.of_funcs_exn ~main:"main" [ B.finish f ] in
  let _, _, ctx = ctx_of ~params program ~input:(Helpers.uniform_input 300) in
  check Alcotest.int "no candidates" 0 (List.length (Alg_exact.find ctx))

(* ---------- Alg-freq ---------- *)

let test_freq_hammock_found () =
  let _, _, ctx =
    ctx_of (Helpers.freq_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  let cands = Alg_freq.find ctx in
  (* the main hammock branch must be found with a high-but-not-1 merge
     probability at the hot join *)
  let with_approx =
    List.filter
      (fun c ->
        List.exists
          (fun cfm ->
            (not cfm.Candidate.exact)
            && cfm.Candidate.merge_prob > 0.85
            && cfm.Candidate.merge_prob < 1.)
          c.Candidate.cfms)
      cands
  in
  check Alcotest.bool "approximate CFM found" true (with_approx <> []);
  (* rare-exit probability ~5%: merge prob ~0.95 *)
  let cfm =
    List.find
      (fun (cfm : Candidate.cfm_candidate) ->
        (not cfm.Candidate.exact) && cfm.Candidate.merge_prob > 0.85)
      (List.concat_map (fun c -> c.Candidate.cfms) with_approx)
  in
  check Alcotest.bool "merge prob ~0.95" true
    (cfm.Candidate.merge_prob > 0.90 && cfm.Candidate.merge_prob < 0.99)

let test_freq_respects_min_merge_prob () =
  let params = { Params.default with Params.min_merge_prob = 0.99 } in
  let _, _, ctx =
    ctx_of ~params (Helpers.freq_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  List.iter
    (fun c ->
      List.iter
        (fun (cfm : Candidate.cfm_candidate) ->
          check Alcotest.bool "all cfms above threshold" true
            (cfm.Candidate.merge_prob >= 0.99))
        c.Candidate.cfms)
    (Alg_freq.find ctx)

let test_freq_max_cfm_cap () =
  let _, _, ctx =
    ctx_of (Helpers.freq_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  List.iter
    (fun c ->
      check Alcotest.bool "cfm cap" true
        (List.length c.Candidate.cfms <= Params.default.Params.max_cfm))
    (Alg_freq.find ctx)

(* ---------- chains ---------- *)

let test_chain_reduction () =
  (* A -> {B, C}; B -> C -> D: C is on every path to D, so C and D chain
     and only one survives. First-arrival exploration gives D ~zero
     probability, so C must win. *)
  let f = B.func "main" in
  let v = reg 4 and c = reg 5 and n = reg 6 in
  B.li f n 500;
  B.label f "loop";
  B.read f v;
  B.rem f c v (B.imm 2);
  B.branch f Term.Ne c (B.imm 0) ~target:"bb" ();
  B.label f "cc_direct";
  B.nop f;
  B.jump f "cc";
  B.label f "bb";
  B.nop f;
  B.label f "cc";
  B.nop f;
  B.label f "dd";
  B.nop f;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  let program = Program.of_funcs_exn ~main:"main" [ B.finish f ] in
  let _, _, ctx = ctx_of program ~input:(Helpers.uniform_input 600) in
  List.iter
    (fun (c : Candidate.t) ->
      (* no selected CFM may lie on a path to another selected CFM *)
      List.iter
        (fun (x : Candidate.cfm_candidate) ->
          List.iter
            (fun (y : Candidate.cfm_candidate) ->
              if x != y then
                check Alcotest.bool "chain-free" false
                  (Candidate.Int_set.mem x.Candidate.cfm_block
                     y.Candidate.blocks_on_paths))
            c.Candidate.cfms)
        c.Candidate.cfms)
    (Alg_freq.find ctx)

(* ---------- return CFM ---------- *)

let test_return_cfm () =
  let linked = Linked.link (Helpers.ret_cfm_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  let ann = Select.run linked profile in
  let with_ret =
    Annotation.fold
      (fun d acc -> if d.Annotation.return_cfm then d :: acc else acc)
      ann []
  in
  check Alcotest.int "one return-CFM diverge branch" 1
    (List.length with_ret)

(* ---------- short hammocks ---------- *)

let test_short_hammock_always () =
  let linked = Linked.link (Helpers.simple_hammock_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  let ann = Select.run linked profile in
  let always =
    Annotation.fold
      (fun d acc -> if d.Annotation.always_predicate then d :: acc else acc)
      ann []
  in
  check Alcotest.bool "tiny mispredicted hammock is always-predicated" true
    (always <> []);
  (* without the Short technique nothing is always-predicated *)
  let config =
    Select.cumulative_heuristic [ Select.Exact; Select.Freq ]
  in
  let ann2 = Select.run ~config linked profile in
  Annotation.iter
    (fun d ->
      check Alcotest.bool "no always flag" false d.Annotation.always_predicate)
    ann2

(* ---------- loops ---------- *)

let test_loop_selection_boundaries () =
  (* avg iterations ~3.5 passes LOOP_ITER = 15; big modulus fails. *)
  let accept = Helpers.data_loop_program ~iters:1000 ~modulus:6 () in
  let linked = Linked.link accept in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 1100)
  in
  let ctx = Context.create linked profile in
  check Alcotest.bool "small loop accepted" true (Loop_select.find ctx <> []);
  let reject = Helpers.data_loop_program ~iters:1000 ~modulus:40 () in
  let linked = Linked.link reject in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 1100)
  in
  let ctx = Context.create linked profile in
  check Alcotest.bool "high-iteration loop rejected by LOOP_ITER" true
    (Loop_select.find ctx = [])

let test_loop_static_size_filter () =
  let big = Helpers.data_loop_program ~iters:500 ~modulus:4 ~body:40 () in
  let linked = Linked.link big in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 600)
  in
  let ctx = Context.create linked profile in
  check Alcotest.bool "fat body rejected by STATIC_LOOP_SIZE" true
    (Loop_select.find ctx = [])

(* ---------- cost model ---------- *)

let synthetic_cfm ~insts ~merge_prob =
  {
    Candidate.cfm_block = 0;
    cfm_addr = 0;
    exact = merge_prob >= 1.;
    merge_prob;
    longest_t = insts;
    longest_nt = insts;
    avg_t = float_of_int insts;
    avg_nt = float_of_int insts;
    freq_t = insts;
    freq_nt = insts;
    prob_t = 1.;
    prob_nt = 1.;
    max_cbr = 0;
    select_uops = 2;
    blocks_on_paths = Candidate.Int_set.empty;
  }

let cost_of ~insts ~merge_prob =
  let cfm = synthetic_cfm ~insts ~merge_prob in
  Cost_model.dpred_cost Params.default
    ~overhead:
      (Cost_model.dpred_overhead Params.default Cost_model.Edge_weighted
         [ cfm ] ~taken_prob:0.5)

let test_cost_monotone_in_size () =
  let last = ref neg_infinity in
  List.iter
    (fun insts ->
      let c = cost_of ~insts ~merge_prob:0.95 in
      check Alcotest.bool "cost grows with hammock size" true (c >= !last);
      last := c)
    [ 2; 8; 16; 32; 64; 128 ]

let test_cost_monotone_in_merge_prob () =
  let last = ref infinity in
  List.iter
    (fun p ->
      let c = cost_of ~insts:16 ~merge_prob:p in
      check Alcotest.bool "cost falls as merge prob rises" true (c <= !last);
      last := c)
    [ 0.1; 0.3; 0.5; 0.8; 0.95; 1.0 ]

let test_cost_select_decision () =
  check Alcotest.bool "small exact hammock selected" true
    (cost_of ~insts:6 ~merge_prob:1.0 < 0.);
  check Alcotest.bool "huge hammock rejected" true
    (cost_of ~insts:150 ~merge_prob:1.0 > 0.)

let test_useless_insts () =
  let cfm = synthetic_cfm ~insts:10 ~merge_prob:1. in
  (* symmetric 10/10 hammock, taken prob 0.5: 10 useless *)
  check (Alcotest.float 1e-9) "useless" 10.
    (Cost_model.useless_insts Cost_model.Edge_weighted cfm ~taken_prob:0.5);
  (* biased: the common side is useful more often *)
  let u =
    Cost_model.useless_insts Cost_model.Edge_weighted cfm ~taken_prob:0.9
  in
  check (Alcotest.float 1e-9) "still one side useless" 10. u

(* Regression: per-CFM merge probabilities can overlap and sum above 1;
   one dpred episode merges at most once, so the useless-instruction
   term must cap the cumulative probability exactly like the unmerged
   term does (Eq. 17). *)
let test_dpred_overhead_multi_cfm_clamped () =
  let p = Params.default in
  let c1 = synthetic_cfm ~insts:10 ~merge_prob:0.7 in
  let c2 = synthetic_cfm ~insts:10 ~merge_prob:0.6 in
  let two =
    Cost_model.dpred_overhead p Cost_model.Edge_weighted [ c1; c2 ]
      ~taken_prob:0.5
  in
  (* both CFM points have 10 useless instructions, the probabilities
     cap at 0.7 + 0.3: merged = 10, overhead = 10 / fetch_width, no
     unmerged term. The uncapped sum would give 1.3 * 10 / 8. *)
  check (Alcotest.float 1e-9) "capped at one merge per entry"
    (10. /. float_of_int p.Params.fetch_width)
    two;
  (* identical to a single always-merging CFM point of the same size *)
  let one =
    Cost_model.dpred_overhead p Cost_model.Edge_weighted
      [ synthetic_cfm ~insts:10 ~merge_prob:1.0 ]
      ~taken_prob:0.5
  in
  check (Alcotest.float 1e-9) "= single exact CFM" one two

let test_loop_cost_model () =
  let p = Params.default in
  (* late-exit dominated -> negative cost (profitable) *)
  let profitable =
    Cost_model.loop_cost p ~n_body:10 ~n_select:2 ~dpred_iter:3.
      ~extra_iter:1. ~p_correct:0.2 ~p_early:0.05 ~p_late:0.7 ~p_noexit:0.05
  in
  check Alcotest.bool "late-exit-heavy loop profitable" true (profitable < 0.);
  (* no late exits -> pure overhead *)
  let hopeless =
    Cost_model.loop_cost p ~n_body:10 ~n_select:2 ~dpred_iter:3.
      ~extra_iter:1. ~p_correct:0.5 ~p_early:0.25 ~p_late:0. ~p_noexit:0.25
  in
  check Alcotest.bool "no-late-exit loop unprofitable" true (hopeless > 0.)

(* Pin the four-case breakdown of Eq. 20 with Params.default
   (fetch_width 8, misp_penalty 25), n_body 10, n_select 2,
   dpred_iter 3, extra_iter 1:
     ovh_sel  = 2 * 3 / 8        = 0.75
     ovh_late = 10 * 1 / 8 + ovh_sel = 2.0
   correct / early pay only select-µops; late-exit pays ovh_late but
   saves the flush; no-exit pays the same useless extra-iteration
   fetches as late-exit *and* still flushes. *)
let test_loop_cost_four_cases () =
  let p = Params.default in
  let cost ~p_correct ~p_early ~p_late ~p_noexit =
    Cost_model.loop_cost p ~n_body:10 ~n_select:2 ~dpred_iter:3.
      ~extra_iter:1. ~p_correct ~p_early ~p_late ~p_noexit
  in
  check (Alcotest.float 1e-9) "correct: select-µops only" 0.75
    (cost ~p_correct:1. ~p_early:0. ~p_late:0. ~p_noexit:0.);
  check (Alcotest.float 1e-9) "early-exit: select-µops only" 0.75
    (cost ~p_correct:0. ~p_early:1. ~p_late:0. ~p_noexit:0.);
  check (Alcotest.float 1e-9) "late-exit: NOPed iterations - flush"
    (2.0 -. 25.0)
    (cost ~p_correct:0. ~p_early:0. ~p_late:1. ~p_noexit:0.);
  check (Alcotest.float 1e-9) "no-exit: NOPed iterations, flush kept" 2.0
    (cost ~p_correct:0. ~p_early:0. ~p_late:0. ~p_noexit:1.);
  check (Alcotest.float 1e-9) "mixture is the probability blend"
    ((0.2 *. 0.75) +. (0.05 *. 0.75) +. (0.7 *. (2.0 -. 25.0))
    +. (0.05 *. 2.0))
    (cost ~p_correct:0.2 ~p_early:0.05 ~p_late:0.7 ~p_noexit:0.05)

(* ---------- annotation serialisation ---------- *)

let test_annotation_round_trip () =
  List.iter
    (fun program ->
      let linked = Linked.link program in
      let profile =
        Dmp_profile.Profile.collect linked
          ~input:(Helpers.uniform_input 2100)
      in
      let ann = Select.run linked profile in
      match Annotation.of_string (Annotation.to_string ann) with
      | Error m -> Alcotest.fail m
      | Ok ann' ->
          check Alcotest.(list int) "same diverge branches"
            (Annotation.diverge_addrs ann)
            (Annotation.diverge_addrs ann');
          List.iter
            (fun addr ->
              let d = Option.get (Annotation.find ann addr) in
              let d' = Option.get (Annotation.find ann' addr) in
              check Alcotest.bool "same kind" true
                (d.Annotation.kind = d'.Annotation.kind);
              check Alcotest.bool "same flags" true
                (d.Annotation.always_predicate = d'.Annotation.always_predicate
                && d.Annotation.return_cfm = d'.Annotation.return_cfm);
              check Alcotest.int "same cfm count"
                (List.length d.Annotation.cfms)
                (List.length d'.Annotation.cfms))
            (Annotation.diverge_addrs ann))
    [
      Helpers.simple_hammock_program ();
      Helpers.freq_hammock_program ();
      Helpers.data_loop_program ();
      Helpers.ret_cfm_program ();
    ]

(* ---------- compiled-annotation fingerprint ---------- *)

let compiled_of linked ann = Annotation.compile ~size:(Linked.size linked) ann

(* Rebuild an annotation from its diverge branches, optionally reversing
   insertion order or rewriting each branch on the way. *)
let rebuild ?(rev = false) ?(map = fun d -> d) ann =
  let ds = Annotation.fold (fun d acc -> map d :: acc) ann [] in
  let ds = if rev then ds else List.rev ds in
  let a = Annotation.empty () in
  List.iter (Annotation.add a) ds;
  a

let test_fingerprint_properties () =
  let linked = Linked.link (Helpers.freq_hammock_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  let ann = Select.run linked profile in
  check Alcotest.bool "selection is non-empty" true
    (Annotation.diverge_addrs ann <> []);
  let fp a = Annotation.Compiled.fingerprint (compiled_of linked a) in
  let base = fp ann in
  check Alcotest.string "insertion order is irrelevant" base
    (fp (rebuild ~rev:true ann));
  (* Selection metadata the simulator never reads must be invisible:
     merge_prob, exact, avg_iterations. *)
  let meta =
    rebuild ann ~map:(fun d ->
        {
          d with
          Annotation.cfms =
            List.map
              (fun c ->
                {
                  c with
                  Annotation.merge_prob = 1.0 -. (c.Annotation.merge_prob /. 2.0);
                  exact = not c.Annotation.exact;
                })
              d.Annotation.cfms;
          loop =
            Option.map
              (fun l ->
                { l with Annotation.avg_iterations = l.Annotation.avg_iterations +. 7.0 })
              d.Annotation.loop;
        })
  in
  check Alcotest.string "selection metadata is invisible" base (fp meta);
  check Alcotest.bool "Compiled.equal agrees with the fingerprint" true
    (Annotation.Compiled.equal (compiled_of linked ann) (compiled_of linked meta));
  (* Anything the simulator does read must change the fingerprint. *)
  let tweaked =
    rebuild ann ~map:(fun d ->
        {
          d with
          Annotation.cfms =
            List.map
              (fun c ->
                { c with Annotation.select_uops = c.Annotation.select_uops + 1 })
              d.Annotation.cfms;
          return_cfm = not d.Annotation.return_cfm;
        })
  in
  check Alcotest.bool "behavioural change is visible" true (base <> fp tweaked);
  check Alcotest.bool "Compiled.equal rejects it" false
    (Annotation.Compiled.equal (compiled_of linked ann) (compiled_of linked tweaked));
  let dropped =
    let keep = List.hd (Annotation.diverge_addrs ann) in
    let a = Annotation.empty () in
    Annotation.fold
      (fun d () -> if d.Annotation.branch_addr <> keep then Annotation.add a d)
      ann ();
    a
  in
  check Alcotest.bool "dropping a diverge branch is visible" true
    (base <> fp dropped)

let test_fingerprint_diverge_indices () =
  let linked = Linked.link (Helpers.freq_hammock_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  let ann = Select.run linked profile in
  let size = Linked.size linked in
  let expected =
    List.sort compare
      (List.filter (fun a -> a >= 0 && a < size) (Annotation.diverge_addrs ann))
  in
  check
    Alcotest.(list int)
    "diverge_indices = in-range diverge addresses, ascending" expected
    (Annotation.Compiled.diverge_indices (compiled_of linked ann));
  check
    Alcotest.(list int)
    "empty annotation has no indices" []
    (Annotation.Compiled.diverge_indices (compiled_of linked (Annotation.empty ())))

let test_annotation_parse_errors () =
  List.iter
    (fun text ->
      match Annotation.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error: %s" text)
    [ "12 bogus\n"; "x simple\n"; "12 simple cfm=1:2\n"; "12\n" ]

(* ---------- static if-conversion ---------- *)

let output_of program ~input =
  let emu = Dmp_exec.Emulator.create (Linked.link program) ~input in
  ignore (Dmp_exec.Emulator.run emu);
  Dmp_exec.Emulator.output emu

let test_if_convert_semantics () =
  let program = Helpers.simple_hammock_program () in
  let input = Helpers.uniform_input 2100 in
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let converted, stats = If_convert.run linked profile in
  check Alcotest.bool "converted something" true
    (stats.If_convert.converted > 0);
  check Alcotest.bool "same output" true
    (output_of program ~input = output_of converted ~input);
  (* on a different input too *)
  let input2 = Helpers.uniform_input ~seed:123 2100 in
  check Alcotest.bool "same output, other input" true
    (output_of program ~input:input2 = output_of converted ~input:input2)

let test_if_convert_rejects_memory_arms () =
  (* ret_cfm_program's callee arms return; its hammocks are not
     convertible; the emulator behaviour must be untouched. *)
  let program = Helpers.ret_cfm_program () in
  let input = Helpers.uniform_input 2100 in
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let converted, stats = If_convert.run linked profile in
  check Alcotest.int "nothing converted" 0 stats.If_convert.converted;
  check Alcotest.bool "program unchanged semantically" true
    (output_of program ~input = output_of converted ~input)

let test_if_convert_removes_flushes () =
  let program = Helpers.simple_hammock_program () in
  let input = Helpers.uniform_input 2100 in
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let converted, _ = If_convert.run linked profile in
  let flushes p =
    (Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline (Linked.link p)
       ~input).Dmp_uarch.Stats.flushes
  in
  check Alcotest.bool "conversion removes most flushes" true
    (flushes converted * 2 < flushes program)

let test_if_convert_profile_gate () =
  (* A perfectly predictable hammock stays untouched. *)
  let program = Helpers.simple_hammock_program () in
  let input = Array.make 2100 2 in
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let _, stats = If_convert.run linked profile in
  check Alcotest.int "profile gate holds" 0 stats.If_convert.converted

(* ---------- ablation knobs ---------- *)

let test_ablation_knobs () =
  let linked = Linked.link (Helpers.freq_hammock_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  (* all-defs select counting must never be below the liveness count *)
  let selects params =
    let config = { Select.all_heuristic with Select.params } in
    let ann = Select.run ~config linked profile in
    Annotation.fold
      (fun d acc ->
        acc
        + List.fold_left
            (fun a (c : Annotation.cfm) -> a + c.Annotation.select_uops)
            0 d.Annotation.cfms)
      ann 0
  in
  let live = selects Params.default in
  let all = selects { Params.default with Params.live_selects = false } in
  check Alcotest.bool "liveness prunes selects" true (all >= live);
  (* chain reduction off still respects the CFM cap *)
  let config =
    { Select.all_heuristic with
      Select.params = { Params.default with Params.chain_reduction = false }
    }
  in
  let ann = Select.run ~config linked profile in
  Annotation.iter
    (fun d ->
      check Alcotest.bool "cfm cap without chains" true
        (List.length d.Annotation.cfms <= Params.default.Params.max_cfm))
    ann

let test_two_d_filter_shrinks_annotation () =
  let linked = Linked.link (Helpers.simple_hammock_program ()) in
  (* constant input: the hammock is easy everywhere -> filtered out *)
  let input = Array.make 2100 2 in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let td = Dmp_profile.Two_d.collect ~num_slices:8 linked ~input in
  let plain = Select.run linked profile in
  let filtered = Select.run ~two_d:td linked profile in
  check Alcotest.bool "2D filter never grows the annotation" true
    (Annotation.count filtered <= Annotation.count plain)

(* ---------- simple selectors ---------- *)

let test_simple_selectors () =
  let linked = Linked.link (Helpers.freq_hammock_program ()) in
  let profile =
    Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 2100)
  in
  let every = Simple_select.run Simple_select.Every_br linked profile in
  let ifelse = Simple_select.run Simple_select.If_else linked profile in
  let high = Simple_select.run (Simple_select.High_bp 0.05) linked profile in
  let immediate = Simple_select.run Simple_select.Immediate linked profile in
  check Alcotest.bool "every-br covers the most" true
    (Annotation.count every >= Annotation.count high
     && Annotation.count every >= Annotation.count ifelse
     && Annotation.count every >= Annotation.count immediate);
  (* every-br marks exactly the branches executed during profiling *)
  let executed_branches =
    List.length
      (List.filter
         (fun a -> Dmp_profile.Profile.executed profile ~addr:a > 0)
         (Dmp_profile.Profile.branch_addrs profile))
  in
  check Alcotest.int "every-br count" executed_branches
    (Annotation.count every);
  (* random-50 is deterministic given the seed *)
  let r1 = Simple_select.run (Simple_select.Random_50 7) linked profile in
  let r2 = Simple_select.run (Simple_select.Random_50 7) linked profile in
  check Alcotest.(list int) "random deterministic"
    (Annotation.diverge_addrs r1) (Annotation.diverge_addrs r2)

(* ---------- exploration properties ---------- *)

let qcheck_explore_invariants =
  QCheck.Test.make ~name:"exploration invariants on random programs"
    ~count:30
    QCheck.(int_range 3 15)
    (fun n ->
      let st = Random.State.make [| n; 131 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let profile =
        Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 64)
      in
      let ctx = Context.create linked profile in
      let ok = ref true in
      for func = 0 to Context.num_fns ctx - 1 do
        let fn = Context.fn ctx func in
        for block = 0 to Dmp_cfg.Cfg.num_nodes fn.Context.cfg - 1 do
          match Dmp_cfg.Cfg.branch_successors fn.Context.cfg block with
          | None -> ()
          | Some (target, _) ->
              let r =
                Explore.explore ctx ~func ~start:target
                  ~stop_blocks:Explore.Int_set.empty ~structural:false
              in
              Hashtbl.iter
                (fun _ (reach : Explore.reach) ->
                  (* probabilities are probabilities *)
                  if reach.Explore.prob < -.1e-9
                     || reach.Explore.prob > 1. +. 1e-9
                  then ok := false;
                  (* the most frequent path is no longer than the longest *)
                  if reach.Explore.best_path_insts > reach.Explore.longest
                  then ok := false;
                  (* the expected length lies within [0, longest] *)
                  let avg = Explore.avg_insts reach in
                  if avg < -.1e-9
                     || avg > float_of_int reach.Explore.longest +. 1e-9
                  then ok := false)
                r.Explore.reaches
        done
      done;
      !ok)

(* ---------- selection invariants (property) ---------- *)

let qcheck_selection_invariants =
  QCheck.Test.make ~name:"selection invariants on random programs" ~count:30
    QCheck.(int_range 3 15)
    (fun n ->
      let st = Random.State.make [| n; 91 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let profile =
        Dmp_profile.Profile.collect linked ~input:(Helpers.uniform_input 64)
      in
      let ann = Select.run linked profile in
      Annotation.fold
        (fun d ok ->
          ok
          && List.length d.Annotation.cfms <= Params.default.Params.max_cfm
          && Linked.is_conditional_branch linked d.Annotation.branch_addr
          && List.for_all
               (fun (c : Annotation.cfm) ->
                 c.Annotation.merge_prob >= 0.
                 && c.Annotation.merge_prob <= 1.
                 && c.Annotation.select_uops >= 0)
               d.Annotation.cfms)
        ann true)

(* ---------- Annotation.compile edge cases ---------- *)

(* The compiled per-address table must agree with a straightforward
   list-based interpretation of the annotation, even on malformed CFM
   lists: duplicates (last declaration wins), unsorted addresses, a
   negative-address return pseudo-entry, and a diverge branch whose
   address lies outside the image entirely. *)
let test_compile_edge_cases () =
  let mk_cfm addr selects =
    { Annotation.cfm_addr = addr; exact = false; merge_prob = 0.5;
      select_uops = selects }
  in
  let messy =
    { Annotation.branch_addr = 10; kind = Annotation.Frequently_hammock;
      cfms = [ mk_cfm 30 2; mk_cfm 20 1; mk_cfm 30 7; mk_cfm (-1) 3 ];
      return_cfm = true; always_predicate = false; loop = None }
  in
  let defaulted =
    { Annotation.branch_addr = 12; kind = Annotation.Simple_hammock;
      cfms = []; return_cfm = true; always_predicate = false; loop = None }
  in
  let absent =
    { messy with Annotation.branch_addr = 60 }
  in
  let ann = Annotation.empty () in
  Annotation.add ann messy;
  Annotation.add ann defaulted;
  Annotation.add ann absent;
  let size = 50 in
  let table = Annotation.compile ~size ann in
  check Alcotest.int "one slot per address" size (Array.length table);
  Array.iteri
    (fun a slot ->
      check Alcotest.bool
        (Printf.sprintf "slot %d occupancy" a)
        (a = 10 || a = 12)
        (slot <> None))
    table;
  let c = Option.get table.(10) in
  (* list-based reference: membership ignores the return pseudo-entry;
     duplicates resolve to the last declaration *)
  let ref_is_cfm a =
    List.exists
      (fun (m : Annotation.cfm) -> m.Annotation.cfm_addr = a)
      messy.Annotation.cfms
    && a >= 0
  in
  let ref_selects a =
    if a < 0 then 0
    else
      List.fold_left
        (fun acc (m : Annotation.cfm) ->
          if m.Annotation.cfm_addr = a then m.Annotation.select_uops else acc)
        0 messy.Annotation.cfms
  in
  for a = 0 to size - 1 do
    check Alcotest.bool
      (Printf.sprintf "is_cfm %d agrees with the list path" a)
      (ref_is_cfm a) (Annotation.is_cfm c a);
    check Alcotest.int
      (Printf.sprintf "cfm_selects %d agrees with the list path" a)
      (ref_selects a)
      (Annotation.cfm_selects c a)
  done;
  check Alcotest.(array int) "addresses sorted, duplicate collapsed"
    [| 20; 30 |] c.Annotation.c_cfm_addrs;
  check Alcotest.(array int) "selects parallel, last declaration wins"
    [| 1; 7 |] c.Annotation.c_cfm_selects;
  check Alcotest.int "return selects from the pseudo-entry" 3
    c.Annotation.c_ret_selects;
  let d = Option.get table.(12) in
  check Alcotest.int "return selects default when undeclared" 4
    d.Annotation.c_ret_selects;
  check Alcotest.bool "empty CFM list has no members" false
    (Annotation.is_cfm d 12)

(* ---------- Section 5.2 loop-threshold boundaries ---------- *)

(* STATIC_LOOP_SIZE = 30, DYNAMIC_LOOP_SIZE = 80, LOOP_ITER = 15: each
   limit is inclusive — exactly at the limit selects, one over does
   not. The avg_iterations values are exact binary floats, so the
   dynamic product is computed without rounding. *)
let test_loop_threshold_boundaries () =
  let p = Params.default in
  check Alcotest.int "STATIC_LOOP_SIZE" 30 p.Params.static_loop_size;
  check Alcotest.int "DYNAMIC_LOOP_SIZE" 80 p.Params.dynamic_loop_size;
  check Alcotest.int "LOOP_ITER" 15 p.Params.loop_iter;
  let mk ~body ~avg =
    { Loop_select.func = 0; block = 0; branch_addr = 0; body_insts = body;
      avg_iterations = avg; exit_target = 1; select_uops = 0;
      executed = 100; mispredicted = 10 }
  in
  let case name expected ~body ~avg =
    check Alcotest.bool name expected
      (Loop_select.passes_heuristics p (mk ~body ~avg))
  in
  case "static: one under" true ~body:29 ~avg:1.0;
  case "static: exactly at" true ~body:30 ~avg:1.0;
  case "static: one over" false ~body:31 ~avg:1.0;
  case "dynamic: one under (8 x 9.875 = 79)" true ~body:8 ~avg:9.875;
  case "dynamic: exactly at (8 x 10 = 80)" true ~body:8 ~avg:10.0;
  case "dynamic: one over (8 x 10.125 = 81)" false ~body:8 ~avg:10.125;
  case "iterations: one under" true ~body:5 ~avg:14.0;
  case "iterations: exactly at" true ~body:5 ~avg:15.0;
  case "iterations: over" false ~body:5 ~avg:15.5

let () =
  Alcotest.run "dmp_core"
    [
      ( "alg-exact",
        [
          Alcotest.test_case "simple hammock" `Quick
            test_exact_simple_hammock;
          Alcotest.test_case "nested hammock" `Quick
            test_exact_nested_hammock;
          Alcotest.test_case "rejects large" `Quick test_exact_rejects_large;
        ] );
      ( "alg-freq",
        [
          Alcotest.test_case "finds approximate CFM" `Quick
            test_freq_hammock_found;
          Alcotest.test_case "min merge prob" `Quick
            test_freq_respects_min_merge_prob;
          Alcotest.test_case "max cfm cap" `Quick test_freq_max_cfm_cap;
          Alcotest.test_case "chain reduction" `Quick test_chain_reduction;
        ] );
      ( "optimisations",
        [
          Alcotest.test_case "return CFM" `Quick test_return_cfm;
          Alcotest.test_case "short hammock always" `Quick
            test_short_hammock_always;
          Alcotest.test_case "loop boundaries" `Quick
            test_loop_selection_boundaries;
          Alcotest.test_case "loop static size" `Quick
            test_loop_static_size_filter;
          Alcotest.test_case "loop threshold boundaries" `Quick
            test_loop_threshold_boundaries;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "monotone in size" `Quick
            test_cost_monotone_in_size;
          Alcotest.test_case "monotone in merge prob" `Quick
            test_cost_monotone_in_merge_prob;
          Alcotest.test_case "selection decision" `Quick
            test_cost_select_decision;
          Alcotest.test_case "useless insts" `Quick test_useless_insts;
          Alcotest.test_case "multi-CFM merge prob clamped" `Quick
            test_dpred_overhead_multi_cfm_clamped;
          Alcotest.test_case "loop cost" `Quick test_loop_cost_model;
          Alcotest.test_case "loop cost four cases" `Quick
            test_loop_cost_four_cases;
        ] );
      ( "simple selectors",
        [ Alcotest.test_case "behaviour" `Quick test_simple_selectors ] );
      ( "ablations",
        [
          Alcotest.test_case "knobs" `Quick test_ablation_knobs;
          Alcotest.test_case "2D filter" `Quick
            test_two_d_filter_shrinks_annotation;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "round trip" `Quick test_annotation_round_trip;
          Alcotest.test_case "parse errors" `Quick
            test_annotation_parse_errors;
          Alcotest.test_case "fingerprint properties" `Quick
            test_fingerprint_properties;
          Alcotest.test_case "fingerprint diverge indices" `Quick
            test_fingerprint_diverge_indices;
          Alcotest.test_case "compile edge cases" `Quick
            test_compile_edge_cases;
        ] );
      ( "if-conversion",
        [
          Alcotest.test_case "semantics preserved" `Quick
            test_if_convert_semantics;
          Alcotest.test_case "memory arms rejected" `Quick
            test_if_convert_rejects_memory_arms;
          Alcotest.test_case "flushes removed" `Quick
            test_if_convert_removes_flushes;
          Alcotest.test_case "profile gate" `Quick
            test_if_convert_profile_gate;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_explore_invariants;
          QCheck_alcotest.to_alcotest qcheck_selection_invariants;
        ] );
    ]
