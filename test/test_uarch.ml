open Dmp_ir
open Dmp_uarch
module B = Build

let check = Alcotest.check
let reg = Reg.of_int

(* ---------- cache ---------- *)

let test_cache_hit_miss () =
  let c = Cache.create ~log2_sets:2 ~ways:2 ~line_bytes:64 in
  check Alcotest.bool "cold miss" false (Cache.access c 0);
  check Alcotest.bool "hit same line" true (Cache.access c 32);
  check Alcotest.bool "different line" false (Cache.access c 256);
  check Alcotest.bool "first still resident" true (Cache.access c 0)

let test_cache_lru_eviction () =
  let c = Cache.create ~log2_sets:0 ~ways:2 ~line_bytes:64 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  ignore (Cache.access c 128);
  (* 0 is the LRU victim *)
  check Alcotest.bool "victim evicted" false (Cache.access c 0);
  check Alcotest.bool "recent kept" true (Cache.access c 128)

let test_hierarchy_latencies () =
  let h = Cache.hierarchy Config.baseline in
  let first = Cache.load_latency h 4096 in
  check Alcotest.int "cold miss costs memory latency"
    Config.baseline.Config.memory_latency first;
  let second = Cache.load_latency h 4096 in
  check Alcotest.int "then L1 hit" Config.baseline.Config.l1_hit_latency
    second

(* ---------- static info ---------- *)

let test_static_info () =
  let program = Helpers.ret_cfm_program ~iters:5 () in
  let linked = Linked.link program in
  let si = Static_info.of_linked linked in
  check Alcotest.int "covers every address" (Linked.size linked)
    (Static_info.size si);
  let found_call = ref false and found_branch = ref false in
  for a = 0 to Static_info.size si - 1 do
    let i = Static_info.get si a in
    match i.Static_info.klass with
    | Static_info.K_call ->
        found_call := true;
        check Alcotest.int "call fallthrough" (a + 1)
          i.Static_info.fall_addr;
        check Alcotest.int "call target is callee entry"
          (Linked.func_entry linked (Linked.func_of_name linked "decide"))
          i.Static_info.taken_addr
    | Static_info.K_branch ->
        found_branch := true;
        check Alcotest.bool "branch targets valid" true
          (i.Static_info.taken_addr >= 0 && i.Static_info.fall_addr >= 0)
    | _ -> ()
  done;
  check Alcotest.bool "saw call" true !found_call;
  check Alcotest.bool "saw branch" true !found_branch

(* ---------- simulator basics ---------- *)

let sim_program ?config ?annotation program ~input =
  Sim.run ?config ?annotation (Linked.link program) ~input

let test_sim_retires_whole_trace () =
  let program = Helpers.simple_hammock_program ~iters:200 () in
  let input = Helpers.uniform_input 300 in
  let linked = Linked.link program in
  let emu = Dmp_exec.Emulator.create linked ~input in
  let expected = Dmp_exec.Emulator.run emu in
  let stats = Sim.run linked ~input in
  check Alcotest.int "retired = architectural trace" expected
    stats.Stats.retired;
  check Alcotest.bool "cycles positive" true (stats.Stats.cycles > 0)

let test_sim_baseline_flushes_equal_mispredictions () =
  let program = Helpers.freq_hammock_program ~iters:500 () in
  let stats =
    sim_program ~config:Config.baseline program
      ~input:(Helpers.uniform_input 600)
  in
  check Alcotest.int "every misprediction flushes"
    stats.Stats.mispredictions stats.Stats.flushes

let test_sim_dmp_empty_annotation_matches_baseline () =
  let program = Helpers.freq_hammock_program ~iters:500 () in
  let input = Helpers.uniform_input 600 in
  let base = sim_program ~config:Config.baseline program ~input in
  let dmp =
    sim_program ~config:Config.dmp
      ~annotation:(Dmp_core.Annotation.empty ())
      program ~input
  in
  check Alcotest.int "identical cycle count" base.Stats.cycles
    dmp.Stats.cycles;
  check Alcotest.int "identical flushes" base.Stats.flushes dmp.Stats.flushes

let test_sim_deterministic () =
  let program = Helpers.simple_hammock_program ~iters:400 () in
  let input = Helpers.uniform_input 500 in
  let a = sim_program program ~input in
  let b = sim_program program ~input in
  check Alcotest.int "same cycles" a.Stats.cycles b.Stats.cycles

let test_predictable_code_has_high_ipc () =
  (* straight-line arithmetic with an easy loop: IPC well above 1 *)
  let f = B.func "main" in
  let n = reg 4 in
  B.li f n 2000;
  B.label f "loop";
  for i = 0 to 9 do
    B.add f (reg (8 + (i mod 4))) (reg (8 + ((i + 1) mod 4))) (B.imm 1)
  done;
  B.sub f n n (B.imm 1);
  B.branch f Term.Gt n (B.imm 0) ~target:"loop" ();
  B.label f "end";
  B.halt f;
  let stats =
    sim_program
      (Program.of_funcs_exn ~main:"main" [ B.finish f ])
      ~input:[||]
  in
  check Alcotest.bool "IPC > 2" true (Stats.ipc stats > 2.);
  check Alcotest.bool "almost no flushes" true (stats.Stats.flushes < 20)

(* ---------- DMP behaviour ---------- *)

let dmp_setup program ~input =
  let linked = Linked.link program in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ann = Dmp_core.Select.run linked profile in
  let base = Sim.run ~config:Config.baseline linked ~input in
  let dmp = Sim.run ~config:Config.dmp ~annotation:ann linked ~input in
  (ann, base, dmp)

let test_dmp_reduces_flushes_on_hammock () =
  let _, base, dmp =
    dmp_setup (Helpers.simple_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  check Alcotest.bool "flushes cut by more than half" true
    (dmp.Stats.flushes * 2 < base.Stats.flushes);
  check Alcotest.bool "faster" true (Stats.ipc dmp > Stats.ipc base);
  check Alcotest.bool "dpred entered" true (dmp.Stats.dpred_entries > 0);
  check Alcotest.bool "merges happened" true (dmp.Stats.dpred_merges > 0)

let test_dmp_loop_cases_observed () =
  let _, _, dmp =
    dmp_setup
      (Helpers.data_loop_program ~iters:2000 ~modulus:6 ())
      ~input:(Helpers.uniform_input 2100)
  in
  check Alcotest.bool "loop dpred entered" true
    (dmp.Stats.dpred_loop_entries > 0);
  check Alcotest.bool "late exits observed" true
    (dmp.Stats.loop_late_exits > 0)

let test_dmp_return_cfm_merges () =
  let ann, base, dmp =
    dmp_setup (Helpers.ret_cfm_program ()) ~input:(Helpers.uniform_input 2100)
  in
  let has_ret =
    Dmp_core.Annotation.fold
      (fun d acc -> acc || d.Dmp_core.Annotation.return_cfm)
      ann false
  in
  check Alcotest.bool "return CFM annotated" true has_ret;
  check Alcotest.bool "merges" true (dmp.Stats.dpred_merges > 0);
  check Alcotest.bool "not slower" true
    (Stats.ipc dmp > Stats.ipc base *. 0.97)

let test_confidence_pvn_range () =
  let _, _, dmp =
    dmp_setup (Helpers.freq_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  let pvn = Stats.confidence_pvn dmp in
  (* the paper quotes 15%-50% for JRS-style estimators *)
  check Alcotest.bool "PVN plausible" true (pvn > 0.10 && pvn < 0.65)

let test_stats_accounting () =
  let _, _, dmp =
    dmp_setup (Helpers.freq_hammock_program ())
      ~input:(Helpers.uniform_input 2100)
  in
  check Alcotest.int "hammock + loop = entries"
    dmp.Stats.dpred_entries
    (dmp.Stats.dpred_hammock_entries + dmp.Stats.dpred_loop_entries);
  check Alcotest.bool "avoided <= mispredictions" true
    (dmp.Stats.dpred_flushes_avoided <= dmp.Stats.mispredictions);
  check Alcotest.bool "flushes + avoided <= mispredictions + early" true
    (dmp.Stats.flushes <= dmp.Stats.mispredictions)

(* ---------- properties ---------- *)

let qcheck_sim_terminates_and_counts =
  QCheck.Test.make ~name:"simulator retires exactly the trace" ~count:30
    QCheck.(int_range 2 15)
    (fun n ->
      let st = Random.State.make [| n; 55 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let input = Helpers.uniform_input 64 in
      let emu = Dmp_exec.Emulator.create linked ~input in
      let expected = Dmp_exec.Emulator.run emu in
      let stats = Sim.run linked ~input in
      stats.Stats.retired = expected
      && stats.Stats.flushes = stats.Stats.mispredictions)

let qcheck_replay_equals_live =
  QCheck.Test.make
    ~name:"trace replay reproduces live simulation bit-for-bit" ~count:25
    QCheck.(int_range 2 16)
    (fun n ->
      let st = Random.State.make [| n; 91 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let input = Helpers.uniform_input 64 in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let bytes (s : Stats.t) = Marshal.to_string s [] in
      let base_ok =
        bytes (Sim.run ~config:Config.baseline linked ~input)
        = bytes (Sim.run_replay ~config:Config.baseline linked tr)
      in
      let profile = Dmp_profile.Profile.collect linked ~input in
      let ann = Dmp_core.Select.run linked profile in
      let dmp_ok =
        bytes (Sim.run ~config:Config.dmp ~annotation:ann linked ~input)
        = bytes (Sim.run_replay ~config:Config.dmp ~annotation:ann linked tr)
      in
      base_ok && dmp_ok)

let qcheck_image_equals_replay =
  QCheck.Test.make
    ~name:"pre-decoded image reproduces trace replay bit-for-bit" ~count:25
    QCheck.(int_range 2 16)
    (fun n ->
      let st = Random.State.make [| n; 137 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let input = Helpers.uniform_input 64 in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let img = Dmp_exec.Image.of_trace tr in
      let bytes (s : Stats.t) = Marshal.to_string s [] in
      (* Vary the config so the equivalence also covers narrow fetch,
         small ROBs and permissive confidence thresholds. *)
      let config =
        match n mod 3 with
        | 0 -> Config.dmp
        | 1 -> { Config.dmp with Config.conf_threshold = 8 }
        | _ -> { Config.dmp with Config.fetch_width = 4; rob_size = 128 }
      in
      let profile = Dmp_profile.Profile.collect linked ~input in
      let ann = Dmp_core.Select.run linked profile in
      let base_ok =
        bytes (Sim.run_replay ~config:Config.baseline linked tr)
        = bytes (Sim.run_image ~config:Config.baseline linked img)
      in
      let dmp_ok =
        bytes (Sim.run_replay ~config ~annotation:ann linked tr)
        = bytes (Sim.run_image ~config ~annotation:ann linked img)
      in
      base_ok && dmp_ok)

let test_image_foreign_program_rejected () =
  (* An image decoded from one program must not drive a simulation of a
     smaller one: create_image validates the address range up front. *)
  let big = Linked.link (Helpers.freq_hammock_program ~iters:10 ()) in
  let small_f = B.func "main" in
  B.halt small_f;
  let small =
    Linked.link (Program.of_funcs_exn ~main:"main" [ B.finish small_f ])
  in
  let tr = Dmp_exec.Trace.capture big ~input:(Helpers.uniform_input 50) in
  let img = Dmp_exec.Image.of_trace tr in
  Alcotest.check_raises "foreign image rejected"
    (Invalid_argument
       "Sim.create_image: image addresses exceed the linked program")
    (fun () -> ignore (Sim.run_image small img))

let qcheck_dmp_never_wildly_slower =
  QCheck.Test.make ~name:"DMP within 40% of baseline on random programs"
    ~count:20
    QCheck.(int_range 2 12)
    (fun n ->
      let st = Random.State.make [| n; 61 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let input = Helpers.uniform_input 64 in
      let profile = Dmp_profile.Profile.collect linked ~input in
      let ann = Dmp_core.Select.run linked profile in
      let base = Sim.run ~config:Config.baseline linked ~input in
      let dmp = Sim.run ~config:Config.dmp ~annotation:ann linked ~input in
      float_of_int dmp.Stats.cycles
      <= 1.4 *. float_of_int (max 1 base.Stats.cycles))

(* ---------- checkpoints ---------- *)

let stat_bytes (s : Stats.t) = Marshal.to_string s []

let ckpt_setup program ~input =
  let linked = Linked.link program in
  let tr = Dmp_exec.Trace.capture linked ~input in
  let img = Dmp_exec.Image.of_trace tr in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ann = Dmp_core.Select.run linked profile in
  (linked, img, ann)

(* Split a checkpointed run back into segments — from the start to the
   first checkpoint, between consecutive checkpoints, and from the last
   checkpoint to the end — and fold the per-segment deltas. *)
let merged_segments ~config ?annotation ~interval linked img ckpts =
  let rec go from rest acc =
    match rest with
    | [] ->
        let d =
          Sim.run_image_segment ~config ?annotation ?from ~interval
            ~to_completion:true linked img
        in
        d :: acc
    | ck :: tl ->
        let d =
          Sim.run_image_segment ~config ?annotation ?from ~interval
            ~to_completion:false linked img
        in
        go (Some ck) tl (d :: acc)
  in
  List.fold_left Stats.merge (Stats.create ()) (go None ckpts [])

let test_checkpoint_resume_roundtrip () =
  let input = Helpers.uniform_input 600 in
  let linked, img, ann =
    ckpt_setup (Helpers.freq_hammock_program ~iters:400 ()) ~input
  in
  let config = Config.dmp in
  let full = Sim.run_image ~config ~annotation:ann linked img in
  let ck_stats, ckpts =
    Sim.run_image_checkpointed ~config ~annotation:ann ~interval:500 linked
      img
  in
  check Alcotest.string "checkpointing run byte-identical to plain run"
    (stat_bytes full) (stat_bytes ck_stats);
  check Alcotest.bool "captured at least two checkpoints" true
    (List.length ckpts >= 2);
  List.iter
    (fun ck ->
      let t = Sim.resume_image ~config ~annotation:ann linked img ck in
      let tail = Sim.run_to_completion t in
      check Alcotest.string "resume reproduces the final statistics"
        (stat_bytes full) (stat_bytes tail))
    ckpts

let test_segment_merge_exact () =
  let input = Helpers.uniform_input 500 in
  let linked, img, ann =
    ckpt_setup (Helpers.data_loop_program ~iters:300 ()) ~input
  in
  List.iter
    (fun (config, annotation) ->
      let full = Sim.run_image ~config ?annotation linked img in
      let interval = max 1 (full.Stats.retired / 5) in
      let _, ckpts =
        Sim.run_image_checkpointed ~config ?annotation ~interval linked img
      in
      let merged =
        merged_segments ~config ?annotation ~interval linked img ckpts
      in
      check Alcotest.string "segment deltas merge to the full run"
        (stat_bytes full) (stat_bytes merged))
    [ (Config.baseline, None); (Config.dmp, Some ann) ]

let test_checkpoint_rejects_foreign_shape () =
  let input = Helpers.uniform_input 400 in
  let linked, img, ann =
    ckpt_setup (Helpers.freq_hammock_program ~iters:300 ()) ~input
  in
  let _, ckpts =
    Sim.run_image_checkpointed ~config:Config.dmp ~annotation:ann
      ~interval:400 linked img
  in
  match ckpts with
  | [] -> Alcotest.fail "expected at least one checkpoint"
  | ck :: _ ->
      let small = { Config.dmp with Config.rob_size = 64 } in
      Alcotest.check_raises "different ROB size rejected"
        (Invalid_argument
           "Sim.resume: checkpoint is for a different configuration")
        (fun () ->
          ignore (Sim.resume_image ~config:small ~annotation:ann linked img ck))

(* Dynamic merge-point provider: the Merge Point Table is part of the
   checkpoint, so resuming mid-run reproduces the full run exactly —
   the predictor restarts with its trained state, not cold. *)
let test_checkpoint_dynamic_mpt_roundtrip () =
  let input = Helpers.uniform_input 800 in
  let linked, img, _ =
    ckpt_setup (Helpers.freq_hammock_program ~iters:600 ()) ~input
  in
  let config = Config.dmp_dynamic Dmp_mpp.Mpt.small in
  let full = Sim.run_image ~config linked img in
  let ck_stats, ckpts =
    Sim.run_image_checkpointed ~config ~interval:600 linked img
  in
  check Alcotest.string "checkpointing run byte-identical to plain run"
    (stat_bytes full) (stat_bytes ck_stats);
  check Alcotest.bool "captured at least one checkpoint" true (ckpts <> []);
  List.iter
    (fun ck ->
      check Alcotest.bool "checkpoint carries the MPT section" true
        (Dmp_exec.Checkpoint.section_opt ck "mpt" <> None);
      let t = Sim.resume_image ~config linked img ck in
      let tail = Sim.run_to_completion t in
      check Alcotest.string "resume reproduces the final statistics"
        (stat_bytes full) (stat_bytes tail))
    ckpts

let test_resume_dynamic_requires_mpt_section () =
  let input = Helpers.uniform_input 400 in
  let linked, img, ann =
    ckpt_setup (Helpers.freq_hammock_program ~iters:300 ()) ~input
  in
  (* Checkpoint a static-provider run, then try to resume it under the
     dynamic provider: the predictor state is missing, which resume
     (unlike the sampled restore, which deliberately starts cold) must
     refuse. *)
  let _, ckpts =
    Sim.run_image_checkpointed ~config:Config.dmp ~annotation:ann
      ~interval:400 linked img
  in
  match ckpts with
  | [] -> Alcotest.fail "expected at least one checkpoint"
  | ck :: _ ->
      Alcotest.check_raises "missing MPT section rejected"
        (Invalid_argument
           "Sim.resume_image: checkpoint lacks merge-point predictor state")
        (fun () ->
          ignore
            (Sim.resume_image
               ~config:(Config.dmp_dynamic Dmp_mpp.Mpt.small)
               linked img ck))

let test_dynamic_live_replay_image_agree () =
  let input = Helpers.uniform_input 600 in
  let program = Helpers.freq_hammock_program ~iters:400 () in
  let linked = Linked.link program in
  let tr = Dmp_exec.Trace.capture linked ~input in
  let img = Dmp_exec.Image.of_trace tr in
  let config = Config.dmp_dynamic Dmp_mpp.Mpt.default in
  let live = Sim.run ~config linked ~input in
  let replay = Sim.run_replay ~config linked tr in
  let image = Sim.run_image ~config linked img in
  check Alcotest.string "live = replay" (stat_bytes live)
    (stat_bytes replay);
  check Alcotest.string "replay = image" (stat_bytes replay)
    (stat_bytes image)

let test_sampled_extrapolates_retired () =
  let input = Helpers.uniform_input 800 in
  let linked, img, ann =
    ckpt_setup (Helpers.freq_hammock_program ~iters:600 ()) ~input
  in
  let config = Config.dmp in
  let full = Sim.run_image ~config ~annotation:ann linked img in
  let sampled =
    Sim.run_image_sampled ~config ~annotation:ann ~length:full.Stats.retired
      ~warmup:200 ~window:500 linked img
  in
  check Alcotest.int "sampled retired extrapolates to the segment length"
    full.Stats.retired sampled.Stats.retired;
  check Alcotest.bool "sampled cycle estimate positive" true
    (sampled.Stats.cycles > 0);
  (* A segment shorter than warmup + window is simulated in full, so the
     estimate is exact. *)
  let short =
    Sim.run_image_sampled ~config ~annotation:ann ~length:full.Stats.retired
      ~warmup:full.Stats.retired ~window:1 linked img
  in
  check Alcotest.string "short segment simulated exactly" (stat_bytes full)
    (stat_bytes short)

let qcheck_segment_merge_random =
  QCheck.Test.make
    ~name:"random programs: segment deltas merge to the full run" ~count:20
    QCheck.(pair (int_range 2 14) (int_range 1 8))
    (fun (n, segs) ->
      let st = Random.State.make [| n; segs; 173 |] in
      let program = Helpers.random_program st ~nblocks:n in
      let linked = Linked.link program in
      let input = Helpers.uniform_input 64 in
      let tr = Dmp_exec.Trace.capture linked ~input in
      let img = Dmp_exec.Image.of_trace tr in
      let profile = Dmp_profile.Profile.collect linked ~input in
      let ann = Dmp_core.Select.run linked profile in
      let config = Config.dmp in
      let full = Sim.run_image ~config ~annotation:ann linked img in
      let interval = max 1 (full.Stats.retired / segs) in
      let ck_stats, ckpts =
        Sim.run_image_checkpointed ~config ~annotation:ann ~interval linked
          img
      in
      let merged =
        merged_segments ~config ~annotation:ann ~interval linked img ckpts
      in
      stat_bytes ck_stats = stat_bytes full
      && stat_bytes merged = stat_bytes full)

(* ---------- fused multi-annotation sweeps ---------- *)

let fused_setup n salt =
  let st = Random.State.make [| n; salt |] in
  let program = Helpers.random_program st ~nblocks:n in
  let linked = Linked.link program in
  let input = Helpers.uniform_input 64 in
  let tr = Dmp_exec.Trace.capture linked ~input in
  let img = Dmp_exec.Image.of_trace tr in
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ann = Dmp_core.Select.run linked profile in
  (linked, img, ann)

let fused_matches_solo ~config linked img lanes =
  let fused = Sim.run_image_fused ~config linked img lanes in
  List.for_all2
    (fun (annotation, _) s ->
      stat_bytes s
      = stat_bytes (Sim.run_image ~config ?annotation linked img))
    lanes fused

let qcheck_fused_equals_solo =
  QCheck.Test.make
    ~name:"fused lanes reproduce solo runs bit-for-bit (K = 1, 2, 4, 8)"
    ~count:16
    QCheck.(pair (int_range 2 14) (int_range 0 3))
    (fun (n, k_ix) ->
      let linked, img, ann = fused_setup n (211 + k_ix) in
      let k = [| 1; 2; 4; 8 |].(k_ix) in
      (* Mix annotated and annotation-free lanes in one kernel, so
         lanes with genuinely different behaviour advance in
         lock-step. *)
      let lanes =
        List.init k (fun i -> ((if i mod 2 = 0 then Some ann else None), None))
      in
      fused_matches_solo ~config:Config.dmp linked img lanes)

(* The runner's prefix-elision plan, emulated at the simulator level:
   checkpoint an annotation-free reference run under the actual
   configuration, then start the annotated lane from the latest
   checkpoint at or before the first image occurrence of any of its
   compiled diverge addresses (the lane and the reference run are in
   byte-identical states there — the diverge table has not been
   consulted yet). Fused with a from-scratch lane and an
   annotation-free lane resumed from the last checkpoint, every lane
   must finish byte-identical to its solo run. *)
let qcheck_fused_elided_equals_solo =
  QCheck.Test.make
    ~name:"prefix-elided fused lanes reproduce solo runs bit-for-bit"
    ~count:15
    QCheck.(int_range 2 14)
    (fun n ->
      let linked, img, ann = fused_setup n 223 in
      let config = Config.dmp in
      let len = Dmp_exec.Image.length img in
      let interval = max 1 (len / 6) in
      let _, cks = Sim.run_image_checkpointed ~config ~interval linked img in
      let compiled =
        Dmp_core.Annotation.compile ~size:(Linked.size linked) ann
      in
      let fo =
        List.fold_left
          (fun m a -> min m (Dmp_exec.Image.first_index img a))
          max_int
          (Dmp_core.Annotation.Compiled.diverge_indices compiled)
      in
      let from = Dmp_exec.Checkpoint.latest_at_or_before cks ~consumed:fo in
      let last = Dmp_exec.Checkpoint.latest_at_or_before cks ~consumed:len in
      let lanes = [ (Some ann, from); (Some ann, None); (None, last) ] in
      fused_matches_solo ~config linked img lanes)

let test_fused_empty_and_mixed_configs () =
  let input = Helpers.uniform_input 500 in
  let linked, img, ann =
    ckpt_setup (Helpers.freq_hammock_program ~iters:300 ()) ~input
  in
  check Alcotest.bool "empty lane list" true
    (Sim.run_image_fused linked img [] = []);
  (* A single lane is exactly the solo run, for a non-default
     configuration too. *)
  let config = { Config.dmp with Config.conf_threshold = 8 } in
  check Alcotest.bool "single lane, custom config" true
    (fused_matches_solo ~config linked img [ (Some ann, None) ])

let () =
  Alcotest.run "dmp_uarch"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU" `Quick test_cache_lru_eviction;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy_latencies;
        ] );
      ( "static info",
        [ Alcotest.test_case "classification" `Quick test_static_info ] );
      ( "baseline",
        [
          Alcotest.test_case "retires trace" `Quick
            test_sim_retires_whole_trace;
          Alcotest.test_case "flushes = mispredictions" `Quick
            test_sim_baseline_flushes_equal_mispredictions;
          Alcotest.test_case "empty annotation = baseline" `Quick
            test_sim_dmp_empty_annotation_matches_baseline;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "predictable code fast" `Quick
            test_predictable_code_has_high_ipc;
        ] );
      ( "dmp",
        [
          Alcotest.test_case "hammock flush reduction" `Quick
            test_dmp_reduces_flushes_on_hammock;
          Alcotest.test_case "loop cases" `Quick test_dmp_loop_cases_observed;
          Alcotest.test_case "return CFM" `Quick test_dmp_return_cfm_merges;
          Alcotest.test_case "confidence PVN" `Quick test_confidence_pvn_range;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_sim_terminates_and_counts;
          QCheck_alcotest.to_alcotest qcheck_replay_equals_live;
          QCheck_alcotest.to_alcotest qcheck_image_equals_replay;
          Alcotest.test_case "foreign image rejected" `Quick
            test_image_foreign_program_rejected;
          QCheck_alcotest.to_alcotest qcheck_dmp_never_wildly_slower;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume round-trip" `Quick
            test_checkpoint_resume_roundtrip;
          Alcotest.test_case "segment merge" `Quick test_segment_merge_exact;
          Alcotest.test_case "dynamic MPT round-trip" `Quick
            test_checkpoint_dynamic_mpt_roundtrip;
          Alcotest.test_case "dynamic resume needs MPT state" `Quick
            test_resume_dynamic_requires_mpt_section;
          Alcotest.test_case "dynamic live=replay=image" `Quick
            test_dynamic_live_replay_image_agree;
          Alcotest.test_case "foreign shape rejected" `Quick
            test_checkpoint_rejects_foreign_shape;
          Alcotest.test_case "sampled extrapolation" `Quick
            test_sampled_extrapolates_retired;
          QCheck_alcotest.to_alcotest qcheck_segment_merge_random;
        ] );
      ( "fused",
        [
          Alcotest.test_case "empty and custom-config lanes" `Quick
            test_fused_empty_and_mixed_configs;
          QCheck_alcotest.to_alcotest qcheck_fused_equals_solo;
          QCheck_alcotest.to_alcotest qcheck_fused_elided_equals_solo;
        ] );
    ]
