(* Merge-point prediction subsystem: the MPT's unit behavior, its
   determinism and snapshot round-trip, the oracle-vs-IPOSDOM property,
   and the invariant checker's validation of predicted merge points. *)

open Dmp_ir
open Dmp_uarch
module Mpt = Dmp_mpp.Mpt
module Oracle = Dmp_mpp.Oracle
module Invariants = Dmp_check.Invariants
module D = Dmp_check.Diagnostic

let check = Alcotest.check

let image_of program ~input =
  let linked = Linked.link program in
  let tr = Dmp_exec.Trace.capture linked ~input in
  (linked, Dmp_exec.Image.of_trace tr)

let run_dynamic ?(mcfg = Mpt.small) linked img =
  let sim = Sim.create_image ~config:(Config.dmp_dynamic mcfg) linked img in
  let stats = Sim.run_to_completion sim in
  (stats, Sim.merge_predictions sim)

(* ---------- MPT unit behavior ---------- *)

(* Drive the table directly with a synthetic hammock: branch at 100,
   taken path 200,201, not-taken path 300,301, merge at 400. *)
let feed_hammock m ~times =
  for i = 0 to times - 1 do
    let taken = i mod 2 = 0 in
    Mpt.observe_branch m ~addr:100 ~taken;
    if taken then begin
      Mpt.observe m ~addr:200;
      Mpt.observe m ~addr:201
    end
    else begin
      Mpt.observe m ~addr:300;
      Mpt.observe m ~addr:301
    end;
    for k = 0 to 20 do
      Mpt.observe m ~addr:(400 + k)
    done
  done

let test_hammock_converges () =
  let m = Mpt.create Mpt.small in
  check Alcotest.(option int) "cold table answers nothing" None
    (Mpt.predict m ~addr:100);
  feed_hammock m ~times:8;
  check Alcotest.(option int) "learns the reconvergence point" (Some 400)
    (Mpt.predict m ~addr:100);
  check Alcotest.bool "prediction tabled" true
    (List.exists
       (fun (b, mg, conf) ->
         b = 100 && mg = 400 && conf >= Mpt.small.Mpt.conf_threshold)
       (Mpt.predictions m))

let test_call_depth_filter () =
  (* The callee's PCs retire between the branch and the merge but at
     depth 1: they must not become merge candidates. *)
  let m = Mpt.create Mpt.small in
  for i = 0 to 7 do
    let taken = i mod 2 = 0 in
    Mpt.observe_branch m ~addr:100 ~taken;
    Mpt.observe m ~addr:(if taken then 200 else 300);
    Mpt.observe_call m ~addr:(if taken then 201 else 301);
    (* same callee body on both sides — common PCs, wrong depth *)
    Mpt.observe m ~addr:900;
    Mpt.observe m ~addr:901;
    Mpt.observe_ret m;
    for k = 0 to 20 do
      Mpt.observe m ~addr:(400 + k)
    done
  done;
  check Alcotest.(option int) "callee body is not a merge point"
    (Some 400) (Mpt.predict m ~addr:100)

let test_export_import_roundtrip () =
  let m = Mpt.create Mpt.small in
  feed_hammock m ~times:5;
  let snap = Mpt.export m in
  let m' = Mpt.create Mpt.small in
  Mpt.import m' snap;
  check
    Alcotest.(list (triple int int int))
    "predictions survive the round-trip" (Mpt.predictions m)
    (Mpt.predictions m');
  check Alcotest.bool "export of the restored table is equal" true
    (Mpt.export m' = snap);
  (* ...and the restored table keeps learning identically. *)
  feed_hammock m ~times:3;
  feed_hammock m' ~times:3;
  check Alcotest.bool "training continues identically" true
    (Mpt.export m' = Mpt.export m)

let test_import_rejects_geometry () =
  let m = Mpt.create Mpt.small in
  feed_hammock m ~times:3;
  let snap = Mpt.export m in
  let other = Mpt.create Mpt.default in
  Alcotest.check_raises "geometry mismatch"
    (Invalid_argument "Mpt.import: geometry mismatch") (fun () ->
      Mpt.import other snap)

(* ---------- oracle = IPOSDOM ---------- *)

(* Independent recomputation: for every conditional branch of every
   function, the oracle must report exactly block_start(ipostdom) — and
   nothing else — no matter what profile the analysis context carries. *)
let iposdom_pairs linked ~input =
  let profile = Dmp_profile.Profile.collect linked ~input in
  let ctx = Dmp_core.Context.create linked profile in
  let acc = ref [] in
  for func = 0 to Dmp_core.Context.num_fns ctx - 1 do
    let fn = Dmp_core.Context.fn ctx func in
    let cfg = fn.Dmp_core.Context.cfg in
    for block = 0 to Dmp_cfg.Cfg.num_nodes cfg - 1 do
      if Dmp_cfg.Cfg.is_conditional cfg block then
        match Dmp_cfg.Postdom.ipostdom fn.Dmp_core.Context.postdom block with
        | None -> ()
        | Some ip ->
            acc :=
              ( Dmp_core.Context.branch_addr ctx ~func ~block,
                Dmp_core.Context.block_start_addr ctx ~func ~block:ip )
              :: !acc
    done
  done;
  List.sort compare !acc

let qcheck_oracle_is_iposdom =
  QCheck.Test.make ~name:"oracle merge points equal IPOSDOM" ~count:8
    QCheck.(int_range 1 1_000)
    (fun seed ->
      List.for_all
        (fun (program, input) ->
          let linked = Linked.link program in
          Oracle.merge_points linked = iposdom_pairs linked ~input)
        (Helpers.generated_programs ~seed 3))

let test_oracle_annotation_subset () =
  let linked =
    Linked.link (Helpers.simple_hammock_program ~iters:200 ())
  in
  let pts = Oracle.merge_points linked in
  let ann = Oracle.annotation linked in
  check Alcotest.bool "oracle annotates something here" true
    (Dmp_core.Annotation.count ann > 0);
  Dmp_core.Annotation.fold
    (fun d () ->
      match d.Dmp_core.Annotation.cfms with
      | [ cfm ] ->
          check Alcotest.bool "annotated CFM is the IPOSDOM pair" true
            (List.mem
               (d.Dmp_core.Annotation.branch_addr, cfm.Dmp_core.Annotation.cfm_addr)
               pts);
          check Alcotest.bool "oracle CFMs are exact" true
            cfm.Dmp_core.Annotation.exact
      | _ -> Alcotest.fail "oracle diverge without exactly one CFM")
    ann ()

(* ---------- predictor inside the simulator ---------- *)

let test_predictor_determinism () =
  let linked, img =
    image_of
      (Helpers.freq_hammock_program ~iters:600 ())
      ~input:(Helpers.uniform_input 800)
  in
  let s1, p1 = run_dynamic linked img in
  let s2, p2 = run_dynamic linked img in
  check Alcotest.string "statistics byte-identical"
    (Marshal.to_string s1 [])
    (Marshal.to_string s2 []);
  check Alcotest.(list (triple int int int)) "predictions identical" p1 p2

let test_predictor_on_hammock () =
  let linked, img =
    image_of
      (Helpers.simple_hammock_program ~iters:2000 ())
      ~input:(Helpers.uniform_input 2000)
  in
  let stats, preds = run_dynamic linked img in
  check Alcotest.bool "the predictor answered" true
    (stats.Stats.mpp_predicted > 0);
  check Alcotest.bool "dpred episodes entered" true
    (stats.Stats.dpred_hammock_entries > 0);
  check Alcotest.bool "warm-up point recorded" true
    (stats.Stats.mpp_warmup_retired > 0);
  (* On a clean hammock, every confident tabled merge point is the
     branch's true IPOSDOM. *)
  let oracle = Oracle.merge_points linked in
  let threshold = Mpt.small.Mpt.conf_threshold in
  let confident =
    List.filter (fun (_, _, conf) -> conf >= threshold) preds
  in
  check Alcotest.bool "some entries reached the threshold" true
    (confident <> []);
  List.iter
    (fun (b, m, _) ->
      match List.assoc_opt b oracle with
      | Some ip ->
          check Alcotest.int
            (Printf.sprintf "prediction for branch %d is its IPOSDOM" b)
            ip m
      | None -> Alcotest.failf "prediction for unknown branch %d" b)
    confident

(* ---------- invariant checker over predictions ---------- *)

let qcheck_predictions_validate =
  QCheck.Test.make ~name:"predicted merge points validate against the CFG"
    ~count:6
    QCheck.(int_range 1 1_000)
    (fun seed ->
      List.for_all
        (fun (program, input) ->
          let linked, img = image_of program ~input in
          let _, preds = run_dynamic linked img in
          let ds = Invariants.check_predicted_merges linked preds in
          if D.has_errors ds then
            QCheck.Test.fail_reportf "prediction rejected: %a" D.pp
              (List.hd (D.errors ds))
          else true)
        (Helpers.generated_programs ~seed 2))

let test_checker_rules_fire () =
  let linked =
    Linked.link (Helpers.simple_hammock_program ~iters:50 ())
  in
  let has rule preds =
    List.exists
      (fun d -> d.D.rule = rule)
      (Invariants.check_predicted_merges linked preds)
  in
  let branch, merge =
    match Oracle.merge_points linked with
    | p :: _ -> p
    | [] -> Alcotest.fail "no oracle merge point"
  in
  check Alcotest.bool "valid pair accepted" false
    (D.has_errors (Invariants.check_predicted_merges linked [ (branch, merge, 2) ]));
  check Alcotest.bool "out-of-range merge" true
    (has "mpp-merge-out-of-range" [ (branch, -1, 2) ]);
  check Alcotest.bool "out-of-range branch" true
    (has "mpp-branch-out-of-range" [ (Linked.size linked, merge, 2) ]);
  check Alcotest.bool "non-conditional branch" true
    (has "mpp-branch-not-conditional" [ (Linked.entry_addr linked, merge, 2) ]);
  check Alcotest.bool "unreachable merge" true
    (has "mpp-merge-unreachable" [ (branch, Linked.entry_addr linked, 2) ])

let test_mutated_prediction_fails () =
  let linked, img =
    image_of
      (Helpers.simple_hammock_program ~iters:500 ())
      ~input:(Helpers.uniform_input 600)
  in
  let _, preds = run_dynamic linked img in
  check Alcotest.bool "clean predictions pass" false
    (D.has_errors (Invariants.check_predicted_merges linked preds));
  let mutated =
    match preds with
    | (b, _, c) :: rest -> (b, -1, c) :: rest
    | [] -> Alcotest.fail "expected at least one prediction"
  in
  check Alcotest.bool "corrupted prediction rejected" true
    (D.has_errors (Invariants.check_predicted_merges linked mutated))

let () =
  Alcotest.run "dmp_mpp"
    [
      ( "mpt",
        [
          Alcotest.test_case "hammock converges" `Quick
            test_hammock_converges;
          Alcotest.test_case "call-depth filter" `Quick
            test_call_depth_filter;
          Alcotest.test_case "export/import round-trip" `Quick
            test_export_import_roundtrip;
          Alcotest.test_case "import rejects geometry" `Quick
            test_import_rejects_geometry;
        ] );
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest qcheck_oracle_is_iposdom;
          Alcotest.test_case "annotation is a gated IPOSDOM subset" `Quick
            test_oracle_annotation_subset;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "deterministic" `Quick
            test_predictor_determinism;
          Alcotest.test_case "predicts the hammock merge" `Quick
            test_predictor_on_hammock;
        ] );
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_predictions_validate;
          Alcotest.test_case "rules fire on crafted corruption" `Quick
            test_checker_rules_fire;
          Alcotest.test_case "mutated prediction fails" `Quick
            test_mutated_prediction_fails;
        ] );
    ]
