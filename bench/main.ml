(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Section 7) on the synthetic SPEC stand-ins, and
   optionally runs Bechamel micro-benchmarks of the compiler algorithms
   themselves.

   Usage:
     bench/main.exe                 regenerate all tables and figures
     bench/main.exe table1 fig5l …  regenerate a subset
     bench/main.exe micro           Bechamel micro-benchmarks
     bench/main.exe serve-load      closed-loop load against a running
                                    `dmp serve` daemon

   Options:
     --repeat N           run the target list N times in one process
                          (a fresh runner per repeat, so the stages
                          really re-run; the persistent cache still
                          applies) and report per-stage min/median
                          seconds to stderr; stdout prints once
     --socket PATH        serve-load: daemon socket (default dmp.sock)
     --clients N          serve-load: concurrent client connections
     --requests N         serve-load: requests per client
     -j/--jobs N          worker domains for the prefetch and the DMP
                          simulation batches (default: DMP_JOBS or the
                          recommended domain count); the report output
                          is byte-identical for every value
     --max-insts N        cap trace capture, profiling and simulation
                          at N instructions (quick smoke runs; also
                          fingerprints the _cache/ directory)
     --benchmarks A,B,…   restrict the suite to the named benchmarks
                          (smoke runs of a target on one workload)
     --timings            print a per-stage wall-clock summary to stderr
     --timings-json FILE  write the per-stage timings to FILE as JSON
     --no-cache           do not read or write the persistent _cache/
     --sim-segments N     split every DMP simulation into N segments at
                          checkpoint boundaries and fan them across the
                          pool; output stays byte-identical to the
                          unsegmented run
     --sim-sampling       interval sampling: simulate a warmup prefix
                          plus a representative window per segment and
                          extrapolate (fast, estimated statistics; see
                          the sim-fidelity target for the error)
     --sim-warmup N       sampled mode: warmup events per segment
     --sim-window N       sampled mode: measured events per segment
     --no-fused           disable the fused batch scheduler (annotation
                          dedup, prefix elision, K-way lock-step
                          kernels); output stays byte-identical, only
                          the stage timings change *)

open Dmp_experiments

(* Bechamel micro-benchmarks: the compile-time cost of each analysis
   stage on a real workload binary (gcc has the largest CFG). One
   Test.make per pipeline stage. *)
let micro () =
  let open Bechamel in
  let open Toolkit in
  let spec = Dmp_workload.Registry.find "gcc" in
  let linked = Dmp_workload.Spec.linked spec in
  let input = spec.Dmp_workload.Spec.input Dmp_workload.Input_gen.Reduced in
  let profile =
    Dmp_profile.Profile.collect ~max_insts:100_000 linked ~input
  in
  let trace =
    Dmp_exec.Trace.capture ~max_insts:100_000 linked ~input
  in
  let image = Dmp_exec.Image.of_trace trace in
  let annotation = Dmp_core.Select.run linked profile in
  let oracle_ann = Dmp_mpp.Oracle.annotation linked in
  let ctx = Dmp_core.Context.create linked profile in
  let sampling =
    { Dmp_sampling.Sampler.mode = Dmp_sampling.Sampler.Lbr 16;
      period = 1000; seed = 42 }
  in
  let sampler =
    Dmp_sampling.Sampler.collect_trace ~max_insts:100_000 ~config:sampling
      linked trace
  in
  let tests =
    [
      Test.make ~name:"context-build"
        (Staged.stage (fun () ->
             ignore (Dmp_core.Context.create linked profile)));
      Test.make ~name:"alg-exact"
        (Staged.stage (fun () -> ignore (Dmp_core.Alg_exact.find ctx)));
      Test.make ~name:"alg-freq"
        (Staged.stage (fun () -> ignore (Dmp_core.Alg_freq.find ctx)));
      Test.make ~name:"loop-select"
        (Staged.stage (fun () -> ignore (Dmp_core.Loop_select.find ctx)));
      Test.make ~name:"select-all-best-heur"
        (Staged.stage (fun () ->
             ignore (Dmp_core.Select.run linked profile)));
      Test.make ~name:"profile-100k"
        (Staged.stage (fun () ->
             ignore
               (Dmp_profile.Profile.collect ~max_insts:100_000 linked
                  ~input)));
      (* Sampled-profile pipeline, split into its two stages: walking
         the trace with the LBR sampler, and reconstructing a dense
         profile from the sparse samples by flow conservation. *)
      Test.make ~name:"sample-100k"
        (Staged.stage (fun () ->
             ignore
               (Dmp_sampling.Sampler.collect_trace ~max_insts:100_000
                  ~config:sampling linked trace)));
      Test.make ~name:"reconstruct-100k"
        (Staged.stage (fun () ->
             ignore (Dmp_sampling.Reconstruct.profile linked sampler)));
      Test.make ~name:"trace-capture-100k"
        (Staged.stage (fun () ->
             ignore
               (Dmp_exec.Trace.capture ~max_insts:100_000 linked ~input)));
      Test.make ~name:"simulate-100k-baseline-live"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline
                  ~max_insts:100_000 linked ~input)));
      Test.make ~name:"simulate-100k-baseline-replay"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_replay ~config:Dmp_uarch.Config.baseline
                  ~max_insts:100_000 linked trace)));
      (* The sweep's hot path, cursor vs pre-decoded image: same trace,
         same annotation, bit-identical stats — only the per-event
         supply differs. *)
      Test.make ~name:"simulate-100k-dmp-cursor"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_replay ~config:Dmp_uarch.Config.dmp
                  ~annotation ~max_insts:100_000 linked trace)));
      Test.make ~name:"simulate-100k-dmp-image"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_image ~config:Dmp_uarch.Config.dmp
                  ~annotation ~max_insts:100_000 linked image)));
      (* The two other merge-point providers on the same image: the
         online Merge Point Table (training overhead included) and the
         oracle IPOSDOM annotation under the static machinery. *)
      Test.make ~name:"simulate-100k-dmp-dynamic"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_image
                  ~config:
                    (Dmp_uarch.Config.dmp_dynamic Dmp_mpp.Mpt.default)
                  ~max_insts:100_000 linked image)));
      Test.make ~name:"simulate-100k-dmp-oracle"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_image ~config:Dmp_uarch.Config.dmp
                  ~annotation:oracle_ann ~max_insts:100_000 linked image)));
      (* The fused kernel at K=2 and K=8 lanes over one image pass:
         ns/run divided by K against simulate-100k-dmp-image is the
         per-lane saving from sharing the per-event image traffic. *)
      Test.make ~name:"simulate-100k-dmp-fused2"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_image_fused ~config:Dmp_uarch.Config.dmp
                  ~max_insts:100_000 linked image
                  (List.init 2 (fun _ -> (Some annotation, None))))));
      Test.make ~name:"simulate-100k-dmp-fused8"
        (Staged.stage (fun () ->
             ignore
               (Dmp_uarch.Sim.run_image_fused ~config:Dmp_uarch.Config.dmp
                  ~max_insts:100_000 linked image
                  (List.init 8 (fun _ -> (Some annotation, None))))));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ())
          Instance.[ monotonic_clock ]
          test
      in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              Printf.printf "%-32s %12.0f ns/run\n" name est
          | Some [] | None -> Printf.printf "%-32s (no estimate)\n" name)
        analysis)
    tests

let valid_targets_msg () =
  Printf.sprintf "valid targets: %s"
    (String.concat ", " (Targets.all @ [ "micro"; "serve-load" ]))

let usage_error msg =
  Printf.eprintf "bench: %s\n%s\n" msg (valid_targets_msg ());
  exit 2

type opts = {
  mutable targets : string list;  (* reversed *)
  mutable timings : bool;
  mutable timings_json : string option;
  mutable jobs : int option;
  mutable max_insts : int option;
  mutable cache : bool;
  mutable benchmarks : string list option;
  mutable sim_segments : int option;
  mutable sim_sampling : bool;
  mutable sim_warmup : int;
  mutable sim_window : int;
  mutable fused : bool;
  mutable repeat : int;
  mutable socket : string;
  mutable clients : int;
  mutable requests : int;
}

let parse_args args =
  let o =
    { targets = []; timings = false; timings_json = None; jobs = None;
      max_insts = None; cache = true; benchmarks = None;
      sim_segments = None; sim_sampling = false;
      sim_warmup = Sim_fidelity.default_warmup;
      sim_window = Sim_fidelity.default_window;
      fused = true;
      repeat = 1; socket = "dmp.sock"; clients = 4; requests = 50 }
  in
  let positive flag rest k =
    match rest with
    | n :: rest' -> (
        match int_of_string_opt n with
        | Some m when m > 0 -> k m rest'
        | Some _ | None ->
            usage_error (Printf.sprintf "bad %s %S" flag n))
    | [] -> usage_error (flag ^ " needs a positive integer")
  in
  let rec go = function
    | [] -> ()
    | "--timings" :: rest ->
        o.timings <- true;
        go rest
    | "--timings-json" :: rest -> (
        match rest with
        | file :: rest' ->
            o.timings_json <- Some file;
            go rest'
        | [] -> usage_error "--timings-json needs a file name")
    | "--no-cache" :: rest ->
        o.cache <- false;
        go rest
    | "--benchmarks" :: rest -> (
        match rest with
        | names :: rest' ->
            let names = String.split_on_char ',' names in
            List.iter
              (fun n ->
                if Dmp_workload.Registry.find_opt n = None then
                  usage_error (Printf.sprintf "unknown benchmark %S" n))
              names;
            if names = [] then usage_error "--benchmarks needs at least one";
            o.benchmarks <- Some names;
            go rest'
        | [] -> usage_error "--benchmarks needs a comma-separated list")
    | "--max-insts" :: rest -> (
        match rest with
        | n :: rest' -> (
            match int_of_string_opt n with
            | Some m when m > 0 ->
                o.max_insts <- Some m;
                go rest'
            | Some _ | None ->
                usage_error (Printf.sprintf "bad instruction cap %S" n))
        | [] -> usage_error "--max-insts needs a positive integer")
    | ("-j" | "--jobs") :: rest -> (
        match rest with
        | n :: rest' -> (
            match int_of_string_opt n with
            | Some j when j > 0 ->
                o.jobs <- Some j;
                go rest'
            | Some _ | None ->
                usage_error (Printf.sprintf "bad job count %S" n))
        | [] -> usage_error "-j/--jobs needs a positive integer")
    | "--sim-segments" :: rest ->
        positive "--sim-segments" rest (fun n rest' ->
            o.sim_segments <- Some n;
            go rest')
    | "--sim-sampling" :: rest ->
        o.sim_sampling <- true;
        go rest
    | "--no-fused" :: rest ->
        o.fused <- false;
        go rest
    | "--sim-warmup" :: rest ->
        positive "--sim-warmup" rest (fun n rest' ->
            o.sim_warmup <- n;
            go rest')
    | "--sim-window" :: rest ->
        positive "--sim-window" rest (fun n rest' ->
            o.sim_window <- n;
            go rest')
    | "--repeat" :: rest ->
        positive "--repeat" rest (fun n rest' ->
            o.repeat <- n;
            go rest')
    | "--socket" :: rest -> (
        match rest with
        | path :: rest' ->
            o.socket <- path;
            go rest'
        | [] -> usage_error "--socket needs a path")
    | "--clients" :: rest ->
        positive "--clients" rest (fun n rest' ->
            o.clients <- n;
            go rest')
    | "--requests" :: rest ->
        positive "--requests" rest (fun n rest' ->
            o.requests <- n;
            go rest')
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        usage_error ("unknown option " ^ flag)
    | target :: rest ->
        o.targets <- target :: o.targets;
        go rest
  in
  go args;
  o.targets <- List.rev o.targets;
  o

(* Closed-loop load generator against a running `dmp serve` daemon:
   every client thread keeps exactly one request outstanding on its own
   connection, cycling phase-shifted through the benchmark list (so
   concurrent clients regularly collide on the same key and exercise
   the daemon's coalescing). Client-observed and server-reported
   latency land in two histograms; the summary line carries achieved
   throughput. *)
let serve_load o =
  let module C = Dmp_serve.Client in
  let module P = Dmp_serve.Protocol in
  let module H = Dmp_serve.Histogram in
  let benches =
    Option.value o.benchmarks ~default:[ "gzip"; "mcf" ] |> Array.of_list
  in
  let client_h = H.create () and server_h = H.create () in
  let errors = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let worker i =
    match C.connect_unix ~wait_s:10. o.socket with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "bench: serve-load: cannot connect to %s: %s\n"
          o.socket (Unix.error_message e);
        Atomic.fetch_and_add errors o.requests |> ignore
    | conn ->
        Fun.protect
          ~finally:(fun () -> C.close conn)
          (fun () ->
            for j = 0 to o.requests - 1 do
              let bench = benches.((i + j) mod Array.length benches) in
              let req =
                P.Run { bench; set = "reduced"; algo = "all-best-heur" }
              in
              let r0 = Unix.gettimeofday () in
              match C.request conn req with
              | Ok { P.ok = true; latency_ns; _ } ->
                  H.record client_h
                    (int_of_float ((Unix.gettimeofday () -. r0) *. 1e9));
                  H.record server_h latency_ns
              | Ok { P.ok = false; _ } | Error _ -> Atomic.incr errors
            done)
  in
  let threads = List.init o.clients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let sent = o.clients * o.requests in
  let ok = sent - Atomic.get errors in
  Printf.printf
    "serve-load: socket=%s clients=%d requests=%d ok=%d errors=%d \
     wall=%.3fs throughput=%.1f req/s\n"
    o.socket o.clients sent ok (Atomic.get errors) wall
    (float_of_int ok /. wall);
  Printf.printf "client latency: %s\n" (H.summary client_h);
  Printf.printf "server latency: %s\n" (H.summary server_h);
  if Atomic.get errors > 0 then exit 1

(* Per-stage min/median seconds across --repeat runs. Stages absent
   from a repeat (e.g. a disk-cache hit replacing a capture) count as
   0 s for that repeat, which is what they cost. *)
let repeat_summary reps =
  let stages =
    List.concat_map (List.map (fun (s, _, _) -> s)) reps
    |> List.sort_uniq compare
  in
  let b = Buffer.create 512 in
  Printf.bprintf b "== Stage timings over %d repeats (seconds) ==\n"
    (List.length reps);
  Printf.bprintf b "%-26s %10s %10s\n" "stage" "min" "median";
  List.iter
    (fun stage ->
      let secs =
        List.map
          (fun rep ->
            match List.find_opt (fun (s, _, _) -> s = stage) rep with
            | Some (_, _, sec) -> sec
            | None -> 0.)
          reps
        |> List.sort compare |> Array.of_list
      in
      let n = Array.length secs in
      let median =
        if n mod 2 = 1 then secs.(n / 2)
        else (secs.((n / 2) - 1) +. secs.(n / 2)) /. 2.
      in
      Printf.bprintf b "%-26s %10.3f %10.3f\n" stage secs.(0) median)
    stages;
  Buffer.contents b

let sim_mode_of o =
  if o.sim_sampling then
    Runner.Sampled
      {
        segments =
          Option.value o.sim_segments ~default:Sim_fidelity.default_segments;
        warmup = o.sim_warmup;
        window = o.sim_window;
      }
  else
    match o.sim_segments with
    | Some n -> Runner.Segmented n
    | None -> Runner.Exact

let () =
  (* Reject a malformed DMP_JOBS before any work starts; -j overrides a
     valid value but a value that does not parse is an error. *)
  (match Dmp_exec.Pool.env_jobs () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
  (match Disk_cache.env_max_bytes () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2);
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  match o.targets with
  | [ "micro" ] -> micro ()
  | [ "serve-load" ] -> serve_load o
  | requested ->
      let targets = if requested = [] then Targets.all else requested in
      let known, unknown = List.partition Targets.is_valid targets in
      List.iter
        (fun t -> Printf.eprintf "bench: unknown target %s\n" t)
        unknown;
      if unknown <> [] then prerr_endline (valid_targets_msg ());
      if known = [] then exit 2;
      let make_runner () =
        Runner.create
          ?benchmarks:
            (Option.map
               (List.map Dmp_workload.Registry.find)
               o.benchmarks)
          ?cache_dir:(if o.cache then Some "_cache" else None)
          ?max_insts:o.max_insts ?jobs:o.jobs ~sim_mode:(sim_mode_of o)
          ~fused:o.fused ()
      in
      (* A fresh runner per repeat, so repeats re-run the stages (the
         persistent cache still short-circuits capture/collect where it
         applies); stdout prints once so a --repeat run's output stays
         comparable to a single run's. *)
      let reps = ref [] in
      let last = ref None in
      for i = 1 to o.repeat do
        let runner = make_runner () in
        Runner.prefetch ~profile_sets:(Targets.profile_sets known) runner;
        List.iter
          (fun t ->
            match Targets.render runner t with
            | Ok s ->
                if i = 1 then begin
                  print_string s;
                  print_newline ()
                end
            | Error msg ->
                if i = 1 then Printf.eprintf "bench: %s\n" msg)
          known;
        reps := Runner.timings runner :: !reps;
        last := Some runner
      done;
      let runner = Option.get !last in
      if o.repeat > 1 then prerr_string (repeat_summary (List.rev !reps));
      if o.timings then prerr_string (Runner.timing_summary runner);
      Option.iter
        (fun file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Runner.timings_json runner)))
        o.timings_json;
      if unknown <> [] then exit 2
