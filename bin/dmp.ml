(* Command-line driver for the DMP compiler/simulator toolchain. *)

open Cmdliner
open Dmp_workload
open Dmp_experiments
module Linked = Dmp_ir.Linked
module Program = Dmp_ir.Program
module Func = Dmp_ir.Func
module Block = Dmp_ir.Block

let bench_arg =
  let doc = "Benchmark name (see `dmp list`)." in
  Arg.(value & opt string "gzip" & info [ "b"; "benchmark" ] ~doc)

let set_arg =
  let doc = "Input set: reduced, train or ref." in
  Arg.(value & opt string "reduced" & info [ "s"; "input-set" ] ~doc)

let algo_arg =
  let doc =
    "Selection algorithm: " ^ String.concat ", " Variants.names ^ "."
  in
  Arg.(value & opt string "all-best-heur" & info [ "a"; "algo" ] ~doc)

let max_insts_arg =
  let doc =
    "Stop profiling and simulation after this many retired instructions."
  in
  Arg.(value & opt (some int) None & info [ "max-insts" ] ~doc)

let provider_arg =
  let doc =
    "Merge-point provider: " ^ String.concat ", " Providers.names
    ^ ". static uses the compile-time selection (-a), dynamic simulates \
       the Merge Point Table predictor, oracle annotates every eligible \
       branch with its true immediate post-dominator."
  in
  Arg.(value & opt string "static" & info [ "provider" ] ~doc)

let lookup_variant name =
  match Variants.of_string name with
  | Some v -> v
  | None ->
      Printf.eprintf "unknown algorithm %s; known: %s\n" name
        (String.concat ", " Variants.names);
      exit 2

let lookup_provider name =
  match Providers.of_string name with
  | Some p -> p
  | None ->
      Printf.eprintf "unknown provider %s; known: %s\n" name
        (String.concat ", " Providers.names);
      exit 2

let lookup_bench name =
  match Registry.find_opt name with
  | Some spec -> spec
  | None ->
      Printf.eprintf "unknown benchmark %s; known: %s\n" name
        (String.concat ", " Registry.names);
      exit 2

let lookup_set s =
  match Input_gen.set_of_string_opt s with
  | Some set -> set
  | None ->
      Printf.eprintf "unknown input set %s; known: reduced, train, ref\n" s;
      exit 2

(* [max_insts] caps profiling here exactly as it caps the simulations
   below, matching the serving daemon's Runner semantics — that is
   what makes `dmp run --max-insts N` byte-identical to the daemon's
   capped run request (CI compares them). *)
let pipeline bench set max_insts =
  let spec = lookup_bench bench in
  let linked = Spec.linked spec in
  let input = spec.Spec.input (lookup_set set) in
  let profile = Dmp_profile.Profile.collect linked ~input ?max_insts in
  (spec, linked, input, profile)

(* ---- list ---- *)

let list_cmd =
  let flag names doc = Arg.(value & flag & info names ~doc) in
  let benchmarks_arg = flag [ "benchmarks" ] "List only the benchmarks." in
  let targets_arg = flag [ "targets" ] "List only the experiment targets." in
  let sets_arg = flag [ "input-sets" ] "List only the input sets." in
  let algos_arg =
    flag [ "algorithms" ] "List only the selection algorithms."
  in
  let run benchmarks targets sets algos =
    let all = not (benchmarks || targets || sets || algos) in
    let wanted =
      [ all || benchmarks; all || targets; all || sets; all || algos ]
    in
    (* Headers only when more than one section prints, so a single
       --targets / --algorithms listing stays script-friendly. *)
    let headers =
      List.length (List.filter Fun.id wanted) > 1
    in
    let printed = ref 0 in
    let section want title body =
      if want then begin
        if headers then begin
          if !printed > 0 then print_newline ();
          Printf.printf "== %s ==\n" title
        end;
        incr printed;
        body ()
      end
    in
    section (all || benchmarks) "benchmarks (-b NAME)" (fun () ->
        List.iter
          (fun spec ->
            Printf.printf "%-10s %s\n" spec.Spec.name spec.Spec.description)
          Registry.all);
    section (all || targets) "experiment targets (dmp experiment TARGET)"
      (fun () -> List.iter print_endline Targets.all);
    section (all || sets) "input sets (-s SET)" (fun () ->
        List.iter print_endline [ "reduced"; "train"; "ref" ]);
    (* Every compile-time selection algorithm is a static merge-point
       provider; the predictor geometries and the oracle have no
       selection algorithm of their own, so they print as extra rows
       with a dash in the algorithm column. *)
    section (all || algos) "selection algorithms (-a ALGO)" (fun () ->
        List.iter
          (fun n -> Printf.printf "%-14s %s\n" n "static")
          Variants.names;
        List.iter
          (fun (name, p) ->
            match p with
            | Providers.Static -> ()
            | Providers.Dynamic _ | Providers.Oracle ->
                Printf.printf "%-14s %s\n" "-" name)
          Providers.all)
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the valid benchmarks, experiment targets, input sets and \
          selection algorithms")
    Term.(const run $ benchmarks_arg $ targets_arg $ sets_arg $ algos_arg)

(* ---- run ---- *)

let run_cmd =
  let ann_file_arg =
    Arg.(value & opt (some string) None
           & info [ "annotation-file" ]
               ~doc:"Load a serialised annotation instead of selecting.")
  in
  let run bench set algo provider max_insts ann_file =
    let provider_t = lookup_provider provider in
    (match (provider_t, ann_file) with
    | (Providers.Dynamic _ | Providers.Oracle), Some _ ->
        Printf.eprintf
          "--annotation-file only applies to the static provider\n";
        exit 2
    | _ -> ());
    let _, linked, input, profile = pipeline bench set max_insts in
    let ann =
      match (provider_t, ann_file) with
      | Providers.Static, Some file -> (
          let ic = open_in file in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          match Dmp_core.Annotation.of_string text with
          | Ok a -> a
          | Error m ->
              Printf.eprintf "bad annotation file: %s\n" m;
              exit 2)
      | Providers.Static, None ->
          Variants.annotate (lookup_variant algo) linked profile
      | (Providers.Dynamic _ | Providers.Oracle), _ -> (
          match Providers.annotation provider_t linked with
          | Some a -> a
          | None -> Dmp_core.Annotation.empty ())
    in
    let base =
      Dmp_uarch.Sim.run ~config:Dmp_uarch.Config.baseline ?max_insts linked
        ~input
    in
    let dmp =
      Dmp_uarch.Sim.run
        ~config:(Providers.config provider_t)
        ~annotation:ann ?max_insts linked ~input
    in
    let algo =
      match provider_t with
      | Providers.Static -> algo
      | Providers.Dynamic _ | Providers.Oracle -> provider
    in
    print_string (Dmp_serve.Render.run_text ~algo ~ann ~base ~dmp)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Profile, select diverge branches, and simulate")
    Term.(
      const run $ bench_arg $ set_arg $ algo_arg $ provider_arg
      $ max_insts_arg $ ann_file_arg)

(* ---- annotate ---- *)

let annotate_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
           & info [ "o"; "output" ]
               ~doc:"Write the annotation in its serialised form to FILE.")
  in
  let run bench set algo provider max_insts out =
    let provider_t = lookup_provider provider in
    let _, linked, _, profile = pipeline bench set max_insts in
    let ann, algo =
      match provider_t with
      | Providers.Static ->
          (Variants.annotate (lookup_variant algo) linked profile, algo)
      | Providers.Oracle -> (
          match Providers.annotation provider_t linked with
          | Some a -> (a, provider)
          | None -> assert false)
      | Providers.Dynamic _ ->
          (* The predictor builds its table at run time: there is no
             compile-time annotation to print or serialise. *)
          Printf.eprintf
            "provider %s has no compile-time annotation; use `dmp run \
             --provider %s` to simulate it\n"
            provider provider;
          exit 2
    in
    match out with
    | Some file ->
        let oc = open_out file in
        output_string oc (Dmp_core.Annotation.to_string ann);
        close_out oc;
        Printf.printf "wrote %d diverge branches to %s\n"
          (Dmp_core.Annotation.count ann) file
    | None -> print_string (Dmp_serve.Render.annotate_text ~algo ann)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:"Show the diverge branches and CFM points the compiler selects")
    Term.(const run $ bench_arg $ set_arg $ algo_arg $ provider_arg
          $ max_insts_arg $ out_arg)

(* ---- profile ---- *)

let profile_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sampling-mode" ]
          ~doc:
            "Collect by hardware-style sampling instead of exact \
             instrumentation: periodic, lbr, lbr<K> or mispredict. The \
             sparse samples are reconstructed to a dense profile before \
             printing.")
  in
  let period_arg =
    Arg.(value & opt int 1000
           & info [ "sampling-period" ] ~doc:"Sampling period (triggers).")
  in
  let seed_arg =
    Arg.(value & opt int 42
           & info [ "sampling-seed" ] ~doc:"Sampling jitter seed.")
  in
  let run bench set mode period seed max_insts =
    let spec = lookup_bench bench in
    let linked = Spec.linked spec in
    let input = spec.Spec.input (lookup_set set) in
    let profile =
      match mode with
      | None -> Dmp_profile.Profile.collect linked ~input ?max_insts
      | Some m ->
          let mode =
            match Dmp_sampling.Sampler.mode_of_string m with
            | Some mode -> mode
            | None ->
                Printf.eprintf
                  "unknown sampling mode %s; known: periodic, lbr, lbr<K>, \
                   mispredict\n"
                  m;
                exit 2
          in
          let config = { Dmp_sampling.Sampler.mode; period; seed } in
          let s =
            Dmp_sampling.Sampler.collect_source ?max_insts ~config linked
              (Dmp_exec.Source.live (Dmp_exec.Emulator.create linked ~input))
          in
          Printf.printf "sampled %s: samples=%d lbr-records=%d\n"
            (Dmp_sampling.Sampler.config_to_string config)
            (Dmp_sampling.Sampler.samples s)
            (Dmp_sampling.Sampler.lbr_captured s);
          Dmp_sampling.Reconstruct.profile linked s
    in
    print_string (Dmp_serve.Render.profile_text linked profile)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Show the per-branch edge/misprediction profile (exact or sampled)")
    Term.(const run $ bench_arg $ set_arg $ mode_arg $ period_arg $ seed_arg
          $ max_insts_arg)

(* ---- cfg ---- *)

let cfg_cmd =
  let func_arg =
    Arg.(value & opt string "main" & info [ "f"; "function" ]
           ~doc:"Function to dump.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  let run bench func dot =
    let spec = lookup_bench bench in
    let program = Lazy.force spec.Spec.program in
    match Program.find_func program func with
    | None ->
        Printf.eprintf "no function %s in %s\n" func bench;
        exit 2
    | Some fi ->
        let f = Program.func program fi in
        if dot then
          print_string (Dmp_cfg.Dot.of_cfg (Dmp_cfg.Cfg.of_func f))
        else Fmt.pr "%a@." Func.pp f
  in
  Cmd.v (Cmd.info "cfg" ~doc:"Dump a benchmark function's CFG")
    Term.(const run $ bench_arg $ func_arg $ dot_arg)

(* ---- asm / disasm ---- *)

let asm_cmd =
  let run bench =
    let spec = lookup_bench bench in
    print_string (Dmp_ir.Asm.to_string (Lazy.force spec.Spec.program))
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Dump a benchmark program as textual assembly")
    Term.(const run $ bench_arg)

let disasm_cmd =
  let run bench =
    let spec = lookup_bench bench in
    let linked = Spec.linked spec in
    let image = Dmp_ir.Encode.encode linked in
    List.iter
      (fun (name, entry, size) ->
        Printf.printf "%s:  ; entry %d, %d instructions\n" name entry size)
      image.Dmp_ir.Encode.symbols;
    Array.iteri
      (fun addr w ->
        Printf.printf "%6d: %016x  %s\n" addr w
          (Dmp_ir.Encode.disassemble_word w))
      image.Dmp_ir.Encode.code
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Encode a benchmark to binary and disassemble the image")
    Term.(const run $ bench_arg)

(* ---- transform ---- *)

let transform_cmd =
  let module T = Dmp_transform in
  let passes_arg =
    Arg.(value & opt string "if-convert,meld"
           & info [ "passes" ]
               ~doc:
                 "Comma-separated pass pipeline: $(b,if-convert), $(b,meld) \
                  or $(b,none).")
  in
  let bias_arg =
    Arg.(value & opt float 0.05
           & info [ "bias-threshold" ]
               ~doc:
                 "Minimum profiled misprediction rate for conversion; 1.0 \
                  or higher disables both passes (identity transform).")
  in
  let asm_arg =
    Arg.(value & flag
           & info [ "asm" ] ~doc:"Dump the transformed program as assembly.")
  in
  let run bench set passes bias asm max_insts =
    let passes =
      match T.Pass_config.passes_of_string passes with
      | Ok ps -> ps
      | Error msg ->
          Printf.eprintf "bad --passes: %s\n" msg;
          exit 2
    in
    let config = { T.Pass_config.default with T.Pass_config.passes;
                   bias_threshold = bias } in
    let _, linked, input, profile = pipeline bench set max_insts in
    let r = T.Pipeline.run ~config linked profile in
    Fmt.pr "transform %s: %a@." bench T.Pass_config.pp config;
    Fmt.pr "%a@." T.Stats.pp r.T.Pipeline.stats;
    Fmt.pr "changed: %b  fresh regs: %s@." r.T.Pipeline.changed
      (match r.T.Pipeline.fresh_regs with
      | [] -> "-"
      | rs ->
          String.concat " "
            (List.map (Fmt.str "%a" Dmp_ir.Reg.pp) rs));
    if asm then print_string (Dmp_ir.Asm.to_string r.T.Pipeline.program);
    (* Validation: the transformed program must satisfy the structural
       invariants and be architecturally equivalent to the original on
       this input; any violation is an exit-2 failure. *)
    let diags =
      (if r.T.Pipeline.changed then
         Dmp_check.Invariants.check_linked r.T.Pipeline.linked
       else [])
      @ Dmp_check.Oracle.check_transform ?max_insts ~original:linked
          ~transformed:r.T.Pipeline.linked
          ~ignore_regs:r.T.Pipeline.fresh_regs ~input ()
    in
    let errs = Dmp_check.Diagnostic.errors diags in
    if errs = [] then
      Printf.printf "validation OK (%d diagnostic%s)\n" (List.length diags)
        (if List.length diags = 1 then "" else "s")
    else begin
      Printf.printf "validation FAIL (%d violation%s)\n" (List.length errs)
        (if List.length errs = 1 then "" else "s");
      List.iter (fun d -> Fmt.pr "  %a@." Dmp_check.Diagnostic.pp d) errs;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "transform"
       ~doc:
         "Apply the software-predication pipeline (select-based \
          if-conversion + control-flow melding) to a benchmark and \
          validate the rewrite against the equivalence oracle")
    Term.(const run $ bench_arg $ set_arg $ passes_arg $ bias_arg $ asm_arg
          $ max_insts_arg)

(* ---- check ---- *)

let check_cmd =
  let module Check = Dmp_check in
  let benchmarks_arg =
    Arg.(value & opt string "all"
           & info [ "benchmarks" ]
               ~doc:
                 "Comma-separated benchmarks to check, $(b,all) for the \
                  whole registry, or $(b,none) to skip benchmarks (random \
                  programs only).")
  in
  let random_arg =
    Arg.(value & opt int 0
           & info [ "random" ]
               ~doc:"Also check N coverage-guided random programs.")
  in
  let seed_arg =
    Arg.(value & opt int 1
           & info [ "seed" ] ~doc:"Seed of the random-program generator.")
  in
  let mutate_arg =
    Arg.(value & flag
           & info [ "mutate-smoke" ]
               ~doc:
                 "Deliberately corrupt one annotation CFM per benchmark \
                  before validating; the checker must then fail (exit 2). \
                  For testing the checker itself.")
  in
  let mutate_transform_arg =
    Arg.(value & flag
           & info [ "mutate-transform-smoke" ]
               ~doc:
                 "Swap the operands of every select instruction the \
                  software-predication transform emits per benchmark \
                  (exchanging the predicated arms); the equivalence oracle \
                  must then fail (exit 2). For testing the transform \
                  oracle itself.")
  in
  let run benchmarks set max_insts random seed mutate mutate_transform =
    let set = lookup_set set in
    let specs =
      match benchmarks with
      | "all" -> Registry.all
      | "none" | "" -> []
      | names ->
          List.map lookup_bench (String.split_on_char ',' names)
    in
    let errors = ref 0 and warnings = ref 0 in
    let report (o : Check.Suite.outcome) =
      let errs = Check.Diagnostic.errors o.Check.Suite.diagnostics in
      let warns =
        List.length o.Check.Suite.diagnostics - List.length errs
      in
      errors := !errors + List.length errs;
      warnings := !warnings + warns;
      if errs = [] then
        Printf.printf "check %-12s OK (%d warning%s)\n%!" o.Check.Suite.name
          warns
          (if warns = 1 then "" else "s")
      else begin
        Printf.printf "check %-12s FAIL (%d violation%s)\n%!"
          o.Check.Suite.name (List.length errs)
          (if List.length errs = 1 then "" else "s");
        List.iter
          (fun d -> Fmt.pr "  %a@." Check.Diagnostic.pp d)
          errs
      end
    in
    List.iter
      (fun spec ->
        report
          (Check.Suite.check_benchmark ?max_insts ~mutate
             ~mutate_transform ~set spec))
      specs;
    if random > 0 then begin
      let outcomes, gen =
        Check.Suite.check_random ?max_insts ~n:random ~seed ()
      in
      List.iter report outcomes;
      print_endline (Check.Generator.coverage_report gen);
      if random >= 12 && not (Check.Generator.all_covered gen) then begin
        incr errors;
        print_endline
          "check random       FAIL (structural coverage incomplete)"
      end
      else if Check.Generator.all_covered gen then
        Printf.printf "coverage OK (%d/%d shapes)\n"
          (List.length Check.Generator.all_shapes)
          (List.length Check.Generator.all_shapes)
    end;
    Printf.printf "check: %d violation%s, %d warning%s\n" !errors
      (if !errors = 1 then "" else "s")
      !warnings
      (if !warnings = 1 then "" else "s");
    if !errors > 0 then exit 2
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate CFG/annotation invariants and run the differential \
          oracle (live vs replay vs image simulation, exact vs sampled \
          profiles) over benchmarks and random programs")
    Term.(
      const run $ benchmarks_arg $ set_arg $ max_insts_arg $ random_arg
      $ seed_arg $ mutate_arg $ mutate_transform_arg)

(* ---- serve / client ---- *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(value & opt string "dmp.sock" & info [ "socket" ] ~doc)

let serve_cmd =
  let tcp_arg =
    Arg.(value & opt (some int) None
           & info [ "tcp-port" ]
               ~doc:"Also listen on 127.0.0.1:PORT.")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
           & info [ "j"; "jobs" ]
               ~doc:
                 "Worker count for parallel stages and request admission \
                  (default: DMP_JOBS clamped to the recommended domain \
                  count).")
  in
  let mem_budget_arg =
    Arg.(value & opt (some int) None
           & info [ "mem-budget" ]
               ~doc:
                 "Byte budget of the in-memory stage LRU (traces, images, \
                  profiles, baselines, selections); default unlimited.")
  in
  let response_budget_arg =
    Arg.(value & opt (some int) None
           & info [ "response-budget" ]
               ~doc:
                 "Byte budget of the rendered-response LRU (default 64 \
                  MiB).")
  in
  let cache_dir_arg =
    Arg.(value & opt (some string) None
           & info [ "cache-dir" ]
               ~doc:"Persist traces/profiles/baselines in this disk cache.")
  in
  let run socket tcp jobs mem_budget response_budget cache_dir max_insts =
    (* The daemon is long-lived: oversubscribing its domains would
       degrade every request, so unlike the offline CLI it refuses
       rather than obeys. *)
    let cap = Domain.recommended_domain_count () in
    (match jobs with
    | Some j when j < 1 ->
        Printf.eprintf "dmp serve: --jobs must be >= 1, got %d\n" j;
        exit 2
    | Some j when j > cap ->
        Printf.eprintf
          "dmp serve: --jobs %d exceeds this machine's %d recommended \
           domains; refusing to oversubscribe the daemon\n"
          j cap;
        exit 2
    | Some _ | None -> ());
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let service =
      Dmp_serve.Service.create ?max_insts ?cache_dir:cache_dir ?jobs
        ?mem_budget ?response_budget ()
    in
    let server =
      Dmp_serve.Server.create ~service ~unix_path:socket ?tcp_port:tcp ()
    in
    let stop _ = Dmp_serve.Server.stop server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Printf.printf "dmp serve: listening on %s%s (jobs=%d)\n%!" socket
      (match tcp with
      | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
      | None -> "")
      (Dmp_serve.Service.jobs service);
    Dmp_serve.Server.run server;
    (* Drained: every accepted request has been answered, so the final
       stats dump is complete. *)
    print_string (Dmp_serve.Service.stats_text service)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the annotation daemon: a Unix-domain (and optional loopback \
          TCP) socket serving annotate / profile / run / stats requests \
          from an in-memory LRU over the disk cache, with identical \
          in-flight requests coalesced. SIGTERM drains in-flight requests \
          and dumps final stats.")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ mem_budget_arg
      $ response_budget_arg $ cache_dir_arg $ max_insts_arg)

let client_cmd =
  let kind_arg =
    Arg.(
      value
      & pos 0 string "run"
      & info [] ~docv:"KIND" ~doc:"Request kind: annotate, profile, run or \
                                   stats.")
  in
  let wait_arg =
    Arg.(value & opt float 5.
           & info [ "wait" ]
               ~doc:"Retry the connection for this many seconds (startup \
                     grace).")
  in
  let run kind socket wait bench set algo =
    let req =
      match kind with
      | "annotate" -> Dmp_serve.Protocol.Annotate { bench; set; algo }
      | "profile" -> Dmp_serve.Protocol.Profile { bench; set }
      | "run" -> Dmp_serve.Protocol.Run { bench; set; algo }
      | "stats" -> Dmp_serve.Protocol.Stats
      | k ->
          Printf.eprintf
            "unknown request kind %s; known: annotate, profile, run, stats\n"
            k;
          exit 2
    in
    let conn =
      match Dmp_serve.Client.connect_unix ~wait_s:wait socket with
      | c -> c
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "dmp client: cannot connect to %s: %s\n" socket
            (Unix.error_message e);
          exit 1
    in
    Fun.protect
      ~finally:(fun () -> Dmp_serve.Client.close conn)
      (fun () ->
        match Dmp_serve.Client.request conn req with
        | Ok { Dmp_serve.Protocol.ok = true; body; _ } -> print_string body
        | Ok { Dmp_serve.Protocol.ok = false; body; _ } ->
            Printf.eprintf "dmp client: server error: %s\n" body;
            exit 1
        | Error msg ->
            Printf.eprintf "dmp client: %s\n" msg;
            exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running `dmp serve` daemon and print the \
          response body (byte-identical to the offline command's output).")
    Term.(
      const run $ kind_arg $ socket_arg $ wait_arg $ bench_arg $ set_arg
      $ algo_arg)

(* ---- experiment ---- *)

let experiment_cmd =
  let target_arg =
    Arg.(
      value
      & pos 0 string "table2"
      & info [] ~docv:"TARGET" ~doc:(String.concat ", " Targets.all))
  in
  let run target =
    if not (Targets.is_valid target) then begin
      Printf.eprintf "unknown experiment target %s; valid targets: %s\n"
        target
        (String.concat ", " Targets.all);
      exit 2
    end;
    let runner = Runner.create () in
    match Targets.render runner target with
    | Ok out -> print_string out
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper")
    Term.(const run $ target_arg)

let () =
  (* Fail fast on a malformed DMP_JOBS before any command runs; a value
     that does not parse as a positive integer is a configuration
     error, not a hint. *)
  (match Dmp_exec.Pool.env_jobs () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "dmp: %s\n" msg;
      exit 2);
  (match Disk_cache.env_max_bytes () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "dmp: %s\n" msg;
      exit 2);
  let info =
    Cmd.info "dmp" ~version:"1.0.0"
      ~doc:
        "Profile-assisted compiler support for dynamic predication in \
         diverge-merge processors (CGO 2007 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; annotate_cmd; profile_cmd; cfg_cmd;
            asm_cmd; disasm_cmd; transform_cmd; check_cmd; experiment_cmd;
            serve_cmd; client_cmd ]))
